open Fastrule

let check = Alcotest.(check bool)

let setup () =
  let tcam = Tcam.create ~size:10 in
  List.iter (fun (id, a) -> Tcam.write tcam ~rule_id:id ~addr:a)
    [ (1, 2); (2, 5); (3, 8) ];
  tcam

let test_window_both_bounds () =
  let tcam = setup () in
  check "between 1 and 2" true
    (Algo.insert_window tcam ~deps:[ 2 ] ~dependents:[ 1 ] = Ok (2, 5))

let test_window_defaults () =
  let tcam = setup () in
  check "no dependents" true
    (Algo.insert_window tcam ~deps:[ 1 ] ~dependents:[] = Ok (-1, 2));
  check "no deps: hi is the size sentinel" true
    (Algo.insert_window tcam ~deps:[] ~dependents:[ 3 ] = Ok (8, 10));
  check "unconstrained" true
    (Algo.insert_window tcam ~deps:[] ~dependents:[] = Ok (-1, 10))

let test_window_multiple_constraints () =
  let tcam = setup () in
  (* lo = max of dependents, hi = min of deps. *)
  check "tightest pair" true
    (Algo.insert_window tcam ~deps:[ 3; 2 ] ~dependents:[ 1 ] = Ok (2, 5))

let test_window_errors () =
  let tcam = setup () in
  check "missing entry" true
    (Result.is_error (Algo.insert_window tcam ~deps:[ 42 ] ~dependents:[]));
  check "contradiction" true
    (Result.is_error (Algo.insert_window tcam ~deps:[ 1 ] ~dependents:[ 3 ]));
  check "same entry both sides" true
    (Result.is_error (Algo.insert_window tcam ~deps:[ 2 ] ~dependents:[ 2 ]))

let test_fresh_check () =
  let tcam = setup () in
  check "fresh ok" true (Algo.fresh_request_check tcam ~rule_id:9 = Ok ());
  check "duplicate" true
    (Result.is_error (Algo.fresh_request_check tcam ~rule_id:2))

let suite =
  [
    ( "algo-window",
      [
        Alcotest.test_case "both bounds" `Quick test_window_both_bounds;
        Alcotest.test_case "defaults" `Quick test_window_defaults;
        Alcotest.test_case "multiple constraints" `Quick test_window_multiple_constraints;
        Alcotest.test_case "errors" `Quick test_window_errors;
        Alcotest.test_case "fresh check" `Quick test_fresh_check;
      ] );
  ]
