open Fastrule

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_updates_for () =
  check_int "250" 250 (Experiment.updates_for 250);
  check_int "500" 500 (Experiment.updates_for 500);
  check_int "1000" 1000 (Experiment.updates_for 1_000);
  check_int "40k" 1000 (Experiment.updates_for 40_000)

let test_default_participation () =
  check "naive small" true (Experiment.default_participation Firmware.Naive 500 = Experiment.All);
  check "naive 20k skipped" true
    (Experiment.default_participation Firmware.Naive 20_000 = Experiment.Skip);
  check "naive mid capped" true
    (match Experiment.default_participation Firmware.Naive 4_000 with
    | Experiment.Cap _ -> true
    | _ -> false);
  check "fr never capped" true
    (Experiment.default_participation (Firmware.FR_O Store.Bit_backend) 40_000
    = Experiment.All)

let test_table_cached_identity () =
  let a = Experiment.table_cached Dataset.ACL5 ~seed:3 ~n:200 in
  let b = Experiment.table_cached Dataset.ACL5 ~seed:3 ~n:200 in
  check "same table object" true (a == b)

let test_stream_deterministic () =
  let spec =
    { Experiment.kind = Dataset.ACL5; n = 200; updates = 50; with_deletes = true; seed = 3 }
  in
  let s1 = Experiment.stream_for spec and s2 = Experiment.stream_for spec in
  check "identical streams" true (s1 = s2);
  check_int "length" 50 (List.length s1)

let test_run_one_counts () =
  let spec =
    { Experiment.kind = Dataset.ACL5; n = 200; updates = 60; with_deletes = false; seed = 4 }
  in
  let table = Experiment.table_cached Dataset.ACL5 ~seed:4 ~n:200 in
  let stream = Experiment.stream_for spec in
  let row = Experiment.run_one ~table ~stream (Firmware.FR_O Store.Bit_backend) in
  check_int "updates run" 60 row.Experiment.updates_run;
  check_int "no failures" 0 row.Experiment.failed;
  check "writes >= updates" true (row.Experiment.writes >= 60);
  check "fw timed" true (row.Experiment.fw.Measure.count = 60)

let test_run_one_cap () =
  let spec =
    { Experiment.kind = Dataset.ACL5; n = 200; updates = 60; with_deletes = false; seed = 4 }
  in
  let table = Experiment.table_cached Dataset.ACL5 ~seed:4 ~n:200 in
  let stream = Experiment.stream_for spec in
  let row = Experiment.run_one ~cap:10 ~table ~stream (Firmware.FR_O Store.Bit_backend) in
  check_int "capped" 10 row.Experiment.updates_run

let test_run_spec_respects_participation () =
  let spec =
    { Experiment.kind = Dataset.ACL5; n = 200; updates = 30; with_deletes = true; seed = 5 }
  in
  let rows =
    Experiment.run_spec spec
      ~participation:(fun kind _ ->
        match kind with Firmware.Naive -> Experiment.Skip | _ -> Experiment.All)
      ~algos:[ Firmware.Naive; Firmware.FR_O Store.Bit_backend ]
  in
  check_int "naive skipped" 1 (List.length rows);
  check "fr present" true
    (List.exists (fun (r : Experiment.row) -> r.Experiment.algo = "fr-o") rows)

let test_csv_roundtrip_shape () =
  let spec =
    { Experiment.kind = Dataset.ACL5; n = 200; updates = 20; with_deletes = false; seed = 6 }
  in
  let rows = Experiment.run_spec spec ~algos:[ Firmware.FR_O Store.Bit_backend ] in
  let row = List.hd rows in
  let csv = Report.row_to_csv row in
  let n_fields = List.length (String.split_on_char ',' csv) in
  let n_cols = List.length (String.split_on_char ',' Report.csv_header) in
  check_int "csv fields match header" n_cols n_fields

let test_speedup_helper () =
  let spec =
    { Experiment.kind = Dataset.ACL5; n = 300; updates = 100; with_deletes = false; seed = 7 }
  in
  let rows =
    Experiment.run_spec spec
      ~algos:[ Firmware.Ruletris; Firmware.FR_O Store.Bit_backend ]
  in
  match Report.speedup rows ~baseline:"ruletris" ~algo:"fr-o" with
  | Some s -> check "fastrule faster" true (s > 1.0)
  | None -> Alcotest.fail "speedup missing"

let suite =
  [
    ( "experiment",
      [
        Alcotest.test_case "updates_for" `Quick test_updates_for;
        Alcotest.test_case "default participation" `Quick test_default_participation;
        Alcotest.test_case "table cache identity" `Quick test_table_cached_identity;
        Alcotest.test_case "stream deterministic" `Quick test_stream_deterministic;
        Alcotest.test_case "run_one counts" `Quick test_run_one_counts;
        Alcotest.test_case "run_one cap" `Quick test_run_one_cap;
        Alcotest.test_case "participation respected" `Quick test_run_spec_respects_participation;
        Alcotest.test_case "csv shape" `Quick test_csv_roundtrip_shape;
        Alcotest.test_case "speedup helper" `Quick test_speedup_helper;
      ] );
  ]
