open Fastrule

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_generate_count_and_ids () =
  List.iter
    (fun kind ->
      let rules = Dataset.generate kind ~seed:5 ~n:300 in
      check_int (Dataset.to_string kind ^ " count") 300 (Array.length rules);
      Array.iteri
        (fun i r -> check_int "id" i r.Rule.id)
        rules)
    Dataset.extended

let test_kind_string_roundtrip () =
  List.iter
    (fun kind ->
      check "roundtrip" true (Dataset.of_string (Dataset.to_string kind) = Some kind))
    Dataset.extended;
  check "unknown" true (Dataset.of_string "nope" = None);
  check "extended superset" true
    (List.for_all (fun k -> List.mem k Dataset.extended) Dataset.all)

let test_determinism () =
  let a = Dataset.generate Dataset.FW4 ~seed:9 ~n:200 in
  let b = Dataset.generate Dataset.FW4 ~seed:9 ~n:200 in
  Array.iteri
    (fun i r -> check "same field" true (Ternary.equal r.Rule.field b.(i).Rule.field))
    a;
  let c = Dataset.generate Dataset.FW4 ~seed:10 ~n:200 in
  let all_same =
    Array.for_all2 (fun (r : Rule.t) (s : Rule.t) -> Ternary.equal r.Rule.field s.Rule.field) a c
  in
  check "different seed differs" false all_same

let test_fields_are_5tuple () =
  let rules = Dataset.generate Dataset.ACL4 ~seed:1 ~n:100 in
  Array.iter
    (fun r -> check_int "width" Header.total_width (Ternary.width r.Rule.field))
    rules

let test_priority_consistent_with_subsumption () =
  (* Whenever one generated rule strictly subsumes another, the narrower
     one must carry a strictly higher priority (it must win). *)
  List.iter
    (fun kind ->
      let rules = Dataset.generate kind ~seed:3 ~n:200 in
      Array.iter
        (fun (a : Rule.t) ->
          Array.iter
            (fun (b : Rule.t) ->
              if a.Rule.id <> b.Rule.id && Rule.subsumes a b && not (Rule.subsumes b a)
              then
                check
                  (Printf.sprintf "%s: %d wins inside %d" (Dataset.to_string kind)
                     b.Rule.id a.Rule.id)
                  true
                  (b.Rule.priority > a.Rule.priority))
            rules)
        rules)
    Dataset.all

let test_stats_in_table2_bands () =
  (* The generators must land in the Table II neighbourhood: small c_avg,
     single-digit-ish c_max, d_in below ~1.2. *)
  List.iter
    (fun kind ->
      let table = Dataset.build_table kind ~seed:7 ~n:1000 in
      let s = Dataset.stats table in
      let name = Dataset.to_string kind in
      check_int (name ^ " n") 1000 s.Dag_stats.n;
      check (name ^ " c_avg in band") true
        (s.Dag_stats.c_avg >= 1.0 && s.Dag_stats.c_avg <= 2.0);
      check (name ^ " c_max in band") true
        (s.Dag_stats.c_max >= 2 && s.Dag_stats.c_max <= 20);
      check (name ^ " d_in < 1.5") true (s.Dag_stats.d_in < 1.5);
      check (name ^ " acyclic") true (Topo.is_acyclic table.Dataset.graph))
    Dataset.all

let test_route_prefix_only () =
  let rules = Dataset.generate Dataset.ROUTE ~seed:2 ~n:150 in
  Array.iter
    (fun (r : Rule.t) ->
      let f = Header.unpack r.Rule.field in
      check "src wild" true (Ternary.equal f.Header.src_ip (Ternary.any 32));
      check "ports wild" true
        (Ternary.equal f.Header.src_port (Ternary.any 16)
        && Ternary.equal f.Header.dst_port (Ternary.any 16));
      (* dst is a prefix: wildcards only below the cared bits. *)
      let plen = 32 - Ternary.num_wildcards f.Header.dst_ip in
      check_int "priority = plen" plen r.Rule.priority)
    rules

let test_route_distinct () =
  let rules = Dataset.generate Dataset.ROUTE ~seed:2 ~n:400 in
  let seen = Hashtbl.create 500 in
  Array.iter
    (fun (r : Rule.t) ->
      let key = Ternary.to_string r.Rule.field in
      check "distinct prefixes" false (Hashtbl.mem seen key);
      Hashtbl.replace seen key ())
    rules

let test_precedence_order_respects_graph () =
  let table = Dataset.build_table Dataset.ACL4 ~seed:4 ~n:300 in
  let pos = Hashtbl.create 300 in
  Array.iteri (fun i id -> Hashtbl.replace pos id i) table.Dataset.order;
  Graph.iter_nodes table.Dataset.graph (fun u ->
      Graph.iter_deps table.Dataset.graph u (fun v ->
          check "dependency placed above" true
            (Hashtbl.find pos u < Hashtbl.find pos v)))

let test_compile_closure_small () =
  List.iter
    (fun kind ->
      let table = Dataset.build_table kind ~seed:11 ~n:120 in
      check
        (Dataset.to_string kind ^ " closure covers overlaps")
        true
        (Dag_build.closure_covers_overlaps table.Dataset.graph table.Dataset.rules))
    Dataset.all

let suite =
  [
    ( "workload",
      [
        Alcotest.test_case "count & ids" `Quick test_generate_count_and_ids;
        Alcotest.test_case "kind string roundtrip" `Quick test_kind_string_roundtrip;
        Alcotest.test_case "deterministic in seed" `Quick test_determinism;
        Alcotest.test_case "fields are 5-tuples" `Quick test_fields_are_5tuple;
        Alcotest.test_case "priority vs subsumption" `Quick
          test_priority_consistent_with_subsumption;
        Alcotest.test_case "Table II bands" `Quick test_stats_in_table2_bands;
        Alcotest.test_case "route prefix-only" `Quick test_route_prefix_only;
        Alcotest.test_case "route distinct" `Quick test_route_distinct;
        Alcotest.test_case "precedence order vs graph" `Quick
          test_precedence_order_respects_graph;
        Alcotest.test_case "compile closure (all kinds)" `Quick test_compile_closure_small;
      ] );
  ]
