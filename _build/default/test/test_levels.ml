open Fastrule

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let graph_of edges nodes =
  let g = Graph.create () in
  List.iter (Graph.add_node g) nodes;
  List.iter (fun (u, v) -> Graph.add_edge g u v) edges;
  g

let test_chain_levels () =
  let g = graph_of [ (1, 2); (2, 3) ] [] in
  let d = Levels.assign g in
  check_int "1" 1 (Hashtbl.find d 1);
  check_int "2" 2 (Hashtbl.find d 2);
  check_int "3" 3 (Hashtbl.find d 3);
  check_int "height" 3 (Levels.height g)

let test_star_levels () =
  (* A star uses only two levels whatever the fan-out. *)
  let g = graph_of [ (0, 1); (0, 2); (0, 3); (0, 4) ] [] in
  let d = Levels.assign g in
  check_int "root level" 1 (Hashtbl.find d 0);
  List.iter (fun v -> check_int "leaf level" 2 (Hashtbl.find d v)) [ 1; 2; 3; 4 ];
  check_int "height" 2 (Levels.height g)

let test_isolated () =
  let g = graph_of [] [ 7; 8 ] in
  let d = Levels.assign g in
  check_int "iso 7" 1 (Hashtbl.find d 7);
  check_int "iso 8" 1 (Hashtbl.find d 8)

let test_validity_on_generated_tables () =
  List.iter
    (fun kind ->
      let table = Dataset.build_table kind ~seed:17 ~n:300 in
      let d = Levels.assign table.Dataset.graph in
      check
        (Dataset.to_string kind ^ " valid priorities")
        true
        (Levels.is_valid table.Dataset.graph (Hashtbl.find d));
      (* Height is exactly the number of distinct levels in a connected
         sense: it never exceeds c_max. *)
      let stats = Dataset.stats table in
      check "height = c_max" true (Levels.height table.Dataset.graph = stats.Dag_stats.c_max))
    Dataset.all

let test_is_valid_detects_violation () =
  let g = graph_of [ (1, 2) ] [] in
  check "constant prios invalid" false (Levels.is_valid g (fun _ -> 5));
  check "reversed invalid" false (Levels.is_valid g (fun x -> -x));
  check "identity valid" true (Levels.is_valid g (fun x -> x))

let test_diamond () =
  let g = graph_of [ (1, 2); (1, 3); (2, 4); (3, 4) ] [] in
  let d = Levels.assign g in
  check_int "top of diamond" 3 (Hashtbl.find d 4);
  check "valid" true (Levels.is_valid g (Hashtbl.find d))

let suite =
  [
    ( "levels",
      [
        Alcotest.test_case "chain" `Quick test_chain_levels;
        Alcotest.test_case "star" `Quick test_star_levels;
        Alcotest.test_case "isolated" `Quick test_isolated;
        Alcotest.test_case "generated tables" `Quick test_validity_on_generated_tables;
        Alcotest.test_case "violations detected" `Quick test_is_valid_detects_violation;
        Alcotest.test_case "diamond" `Quick test_diamond;
      ] );
  ]
