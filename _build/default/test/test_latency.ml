open Fastrule

let check_float = Alcotest.(check (float 1e-9))

let test_default () =
  check_float "write" 0.6 Latency.default.Latency.write_ms;
  check_float "erase" 0.6 Latency.default.Latency.erase_ms

let test_sequence_cost () =
  let l = Latency.make ~write_ms:0.5 ~erase_ms:0.25 () in
  let ops =
    [ Op.insert ~rule_id:1 ~addr:0; Op.insert ~rule_id:2 ~addr:1; Op.delete ~addr:3 ]
  in
  check_float "mixed sequence" 1.25 (Latency.sequence_ms l ops);
  check_float "empty" 0.0 (Latency.sequence_ms l [])

let test_ops_cost () =
  let l = Latency.make ~write_ms:1.0 ~erase_ms:2.0 () in
  check_float "aggregate" 7.0 (Latency.ops_ms l ~writes:3 ~erases:2)

let test_negative_rejected () =
  Alcotest.check_raises "negative"
    (Invalid_argument "Latency.make: costs must be non-negative") (fun () ->
      ignore (Latency.make ~write_ms:(-1.0) ()))

let suite =
  [
    ( "latency",
      [
        Alcotest.test_case "default 0.6ms" `Quick test_default;
        Alcotest.test_case "sequence cost" `Quick test_sequence_cost;
        Alcotest.test_case "aggregate cost" `Quick test_ops_cost;
        Alcotest.test_case "negative rejected" `Quick test_negative_rejected;
      ] );
  ]
