open Fastrule

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let rules_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun (r : Rule.t) (s : Rule.t) ->
         r.Rule.id = s.Rule.id
         && r.Rule.priority = s.Rule.priority
         && Rule.equal_action r.Rule.action s.Rule.action
         && Ternary.equal r.Rule.field s.Rule.field)
       a b

let test_action_strings () =
  check_str "fwd" "fwd:7" (Rules_io.action_to_string (Rule.Forward 7));
  check_str "drop" "drop" (Rules_io.action_to_string Rule.Drop);
  check "fwd parse" true (Rules_io.action_of_string "fwd:7" = Some (Rule.Forward 7));
  check "ctrl parse" true (Rules_io.action_of_string "ctrl" = Some Rule.Controller);
  check "garbage" true (Rules_io.action_of_string "fwd:x" = None);
  check "negative port" true (Rules_io.action_of_string "fwd:-1" = None)

let test_roundtrip_generated () =
  List.iter
    (fun kind ->
      let rules = Dataset.generate kind ~seed:8 ~n:120 in
      match Rules_io.of_string (Rules_io.to_string rules) with
      | Ok back ->
          check (Dataset.to_string kind ^ " roundtrip") true (rules_equal rules back)
      | Error e -> Alcotest.failf "parse failed: %s" e)
    Dataset.all

let test_file_roundtrip () =
  let rules = Dataset.generate Dataset.FW4 ~seed:9 ~n:50 in
  let path = Filename.temp_file "fastrule" ".rules" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Rules_io.save path rules;
      match Rules_io.load path with
      | Ok back -> check "file roundtrip" true (rules_equal rules back)
      | Error e -> Alcotest.failf "load failed: %s" e)

let test_comments_and_blanks () =
  let text = "# hello\n\n  \n0 5 drop 1*0\n# trailing comment\n" in
  match Rules_io.of_string text with
  | Ok rules ->
      check_int "one rule" 1 (Array.length rules);
      check_str "field" "1*0" (Ternary.to_string rules.(0).Rule.field)
  | Error e -> Alcotest.failf "parse failed: %s" e

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_malformed_reports_line () =
  (match Rules_io.of_string "0 5 drop 1*0\nbogus line here\n" with
  | Error e -> check "line number" true (contains_sub e "line 2")
  | Ok _ -> Alcotest.fail "expected error");
  match Rules_io.of_string "0 5 drop 1x0\n" with
  | Error e -> check "bad field" true (contains_sub e "line 1")
  | Ok _ -> Alcotest.fail "expected error"

let test_missing_file () =
  check "missing file" true (Result.is_error (Rules_io.load "/nonexistent/x.rules"))

let suite =
  [
    ( "rules-io",
      [
        Alcotest.test_case "action strings" `Quick test_action_strings;
        Alcotest.test_case "roundtrip all kinds" `Quick test_roundtrip_generated;
        Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
        Alcotest.test_case "comments & blanks" `Quick test_comments_and_blanks;
        Alcotest.test_case "malformed line reported" `Quick test_malformed_reports_line;
        Alcotest.test_case "missing file" `Quick test_missing_file;
      ] );
  ]
