open Fastrule

let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let graph_of edges nodes =
  let g = Graph.create () in
  List.iter (Graph.add_node g) nodes;
  List.iter (fun (u, v) -> Graph.add_edge g u v) edges;
  g

let test_empty () =
  let s = Dag_stats.compute (Graph.create ()) in
  check_int "n" 0 s.Dag_stats.n;
  check_int "c_max" 0 s.Dag_stats.c_max

let test_singletons () =
  let s = Dag_stats.compute (graph_of [] [ 1; 2; 3 ]) in
  check_int "components" 3 s.Dag_stats.n_components;
  check_int "c_max" 1 s.Dag_stats.c_max;
  check_float "c_avg" 1.0 s.Dag_stats.c_avg;
  check_float "d_in" 0.0 s.Dag_stats.d_in

let test_chain_plus_singletons () =
  (* One 3-chain and two singletons: c_max 3, c_avg (3+1+1)/3. *)
  let s = Dag_stats.compute (graph_of [ (1, 2); (2, 3) ] [ 10; 11 ]) in
  check_int "n" 5 s.Dag_stats.n;
  check_int "m" 2 s.Dag_stats.m;
  check_int "components" 3 s.Dag_stats.n_components;
  check_int "c_max" 3 s.Dag_stats.c_max;
  check_float "c_avg" (5.0 /. 3.0) s.Dag_stats.c_avg;
  check_float "d_in" 0.4 s.Dag_stats.d_in

let test_star_diameter () =
  (* A star has diameter 2 regardless of fan-out. *)
  let s = Dag_stats.compute (graph_of [ (0, 1); (0, 2); (0, 3); (0, 4) ] []) in
  check_int "c_max" 2 s.Dag_stats.c_max;
  check_int "components" 1 s.Dag_stats.n_components;
  check_int "max_out" 4 s.Dag_stats.max_out_degree;
  check_int "max_in" 1 s.Dag_stats.max_in_degree

let test_weak_connectivity () =
  (* Edges in opposite directions still join one weak component. *)
  let s = Dag_stats.compute (graph_of [ (1, 2); (3, 2) ] []) in
  check_int "components" 1 s.Dag_stats.n_components;
  check_int "c_max" 2 s.Dag_stats.c_max

let test_components_listing () =
  let comps = Dag_stats.components (graph_of [ (1, 2) ] [ 5 ]) in
  let sizes = List.sort Int.compare (List.map List.length comps) in
  Alcotest.(check (list int)) "sizes" [ 1; 2 ] sizes

let suite =
  [
    ( "stats",
      [
        Alcotest.test_case "empty graph" `Quick test_empty;
        Alcotest.test_case "singletons" `Quick test_singletons;
        Alcotest.test_case "chain + singletons" `Quick test_chain_plus_singletons;
        Alcotest.test_case "star diameter" `Quick test_star_diameter;
        Alcotest.test_case "weak connectivity" `Quick test_weak_connectivity;
        Alcotest.test_case "components listing" `Quick test_components_listing;
      ] );
  ]
