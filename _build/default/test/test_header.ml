open Fastrule

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let sample_spec =
  {
    Header.src_ip = Ternary.prefix_of_int64 ~width:32 ~plen:16 0x0A0B0000L;
    dst_ip = Ternary.exact_of_int64 ~width:32 0xC0A80101L;
    src_port = Ternary.any 16;
    dst_port = Ternary.exact_of_int64 ~width:16 443L;
    proto = Ternary.exact_of_int64 ~width:8 6L;
  }

let test_pack_unpack () =
  let packed = Header.pack sample_spec in
  check_int "total width" Header.total_width (Ternary.width packed);
  let u = Header.unpack packed in
  check "src roundtrip" true (Ternary.equal u.Header.src_ip sample_spec.Header.src_ip);
  check "dst roundtrip" true (Ternary.equal u.Header.dst_ip sample_spec.Header.dst_ip);
  check "sport roundtrip" true (Ternary.equal u.Header.src_port sample_spec.Header.src_port);
  check "dport roundtrip" true (Ternary.equal u.Header.dst_port sample_spec.Header.dst_port);
  check "proto roundtrip" true (Ternary.equal u.Header.proto sample_spec.Header.proto)

let test_pack_rejects_bad_width () =
  Alcotest.check_raises "bad proto width"
    (Invalid_argument "Header: field proto must be 8 bits wide") (fun () ->
      ignore (Header.pack { sample_spec with Header.proto = Ternary.any 16 }))

let test_wildcard_matches_all () =
  let field = Header.pack Header.wildcard in
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 50 do
    let p = Header.random_packet rng in
    check "wildcard matches" true (Ternary.matches_value field (Header.packet_bits p))
  done

let test_packet_matching () =
  let field = Header.pack sample_spec in
  let hit =
    {
      Header.p_src_ip = 0x0A0B1234L;
      p_dst_ip = 0xC0A80101L;
      p_src_port = 9999;
      p_dst_port = 443;
      p_proto = 6;
    }
  in
  check "hit" true (Ternary.matches_value field (Header.packet_bits hit));
  check "wrong dst" false
    (Ternary.matches_value field
       (Header.packet_bits { hit with Header.p_dst_ip = 0xC0A80102L }));
  check "wrong proto" false
    (Ternary.matches_value field (Header.packet_bits { hit with Header.p_proto = 17 }));
  check "src outside prefix" false
    (Ternary.matches_value field
       (Header.packet_bits { hit with Header.p_src_ip = 0x0B0B1234L }))

let test_packet_in () =
  let field = Header.pack sample_spec in
  let rng = Rng.create ~seed:11 in
  for _ = 1 to 100 do
    let p = Header.packet_in rng field in
    check "sampled packet matches" true
      (Ternary.matches_value field (Header.packet_bits p));
    check_int "proto pinned" 6 p.Header.p_proto;
    check_int "dport pinned" 443 p.Header.p_dst_port
  done

let suite =
  [
    ( "header",
      [
        Alcotest.test_case "pack/unpack roundtrip" `Quick test_pack_unpack;
        Alcotest.test_case "pack rejects bad widths" `Quick test_pack_rejects_bad_width;
        Alcotest.test_case "wildcard matches all packets" `Quick test_wildcard_matches_all;
        Alcotest.test_case "field/packet matching" `Quick test_packet_matching;
        Alcotest.test_case "packet_in sampling" `Quick test_packet_in;
      ] );
  ]
