open Fastrule

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* 8-bit toy rules: priority = cared bits unless overridden. *)
let rule ~id ?prio s =
  let field = Ternary.of_string s in
  let priority =
    match prio with
    | Some p -> p
    | None -> Ternary.width field - Ternary.num_wildcards field
  in
  Rule.make ~id ~field ~action:(Rule.Forward id) ~priority

let test_chain_reduction () =
  (* Nested prefixes: the minimum graph must be the chain, not the full
     triangle. *)
  let rules =
    [| rule ~id:0 "1*******"; rule ~id:1 "10******"; rule ~id:2 "101*****" |]
  in
  let g = Dag_build.compile rules in
  check_int "edges" 2 (Graph.n_edges g);
  check "0->1" true (Graph.mem_edge g 0 1);
  check "1->2" true (Graph.mem_edge g 1 2);
  check "no shortcut 0->2" false (Graph.mem_edge g 0 2);
  check "closure covers" true (Dag_build.closure_covers_overlaps g rules)

let test_disjoint_no_edges () =
  let rules = [| rule ~id:0 "00******"; rule ~id:1 "01******"; rule ~id:2 "10******" |] in
  let g = Dag_build.compile rules in
  check_int "no edges" 0 (Graph.n_edges g);
  check_int "all nodes present" 3 (Graph.n_nodes g)

let test_star () =
  (* One broad rule under several disjoint specifics: star with root at the
     broad rule. *)
  let rules =
    [|
      rule ~id:0 "1*******";
      rule ~id:1 "100*****";
      rule ~id:2 "101*****";
      rule ~id:3 "110*****";
    |]
  in
  let g = Dag_build.compile rules in
  check_int "edges" 3 (Graph.n_edges g);
  List.iter (fun v -> check "root depends on specific" true (Graph.mem_edge g 0 v)) [ 1; 2; 3 ]

let test_equal_priority_tiebreak () =
  (* Overlapping equal-priority rules get a deterministic id-based order:
     the smaller id wins (is depended upon). *)
  let rules = [| rule ~id:0 ~prio:5 "1*0*****"; rule ~id:1 ~prio:5 "10******" |] in
  let g = Dag_build.compile rules in
  check "larger id depends on smaller" true (Graph.mem_edge g 1 0);
  check "not reverse" false (Graph.mem_edge g 0 1)

let test_priority_beats_specificity () =
  (* An explicitly prioritised broad rule sits above a specific one. *)
  let rules = [| rule ~id:0 ~prio:100 "1*******"; rule ~id:1 ~prio:1 "11******" |] in
  let g = Dag_build.compile rules in
  check "low prio depends on high" true (Graph.mem_edge g 1 0)

let test_dependencies_of_incremental () =
  let existing =
    [| rule ~id:0 "1*******"; rule ~id:1 "10******"; rule ~id:2 "01******" |]
  in
  let g = Dag_build.compile existing in
  (* A new rule between the chain's two members. *)
  let fresh = rule ~id:9 "101*****" in
  let deps, dependents =
    Dag_build.dependencies_of g ~existing:(Array.to_list existing) fresh
  in
  (* fresh is more specific than both 0 and 1; minimal dep is 1 only. *)
  Alcotest.(check (list int)) "deps minimal" [] deps;
  Alcotest.(check (list int)) "dependents maximal" [ 1 ] dependents;
  Dag_build.insert g ~existing:(Array.to_list existing) fresh;
  check "edge added" true (Graph.mem_edge g 1 9);
  check "no redundant edge from 0" false (Graph.mem_edge g 0 9)

let test_compile_acyclic_and_covering () =
  (* A mixed random-ish table stays acyclic and closure-covering. *)
  let rules =
    [|
      rule ~id:0 "********";
      rule ~id:1 "1*******";
      rule ~id:2 "10******";
      rule ~id:3 "10*1****";
      rule ~id:4 "0*******";
      rule ~id:5 "01*0****";
      rule ~id:6 "11******";
      rule ~id:7 "111*****";
    |]
  in
  let g = Dag_build.compile rules in
  check "acyclic" true (Topo.is_acyclic g);
  check "covers" true (Dag_build.closure_covers_overlaps g rules)

let test_incremental_matches_full_closure () =
  (* Building a table by incremental insertion may keep edges a full
     compile would have reduced away, but the transitive closures — the
     orderings actually enforced — must coincide. *)
  let rng = Rng.create ~seed:99 in
  for _ = 1 to 10 do
    let n = 12 + Rng.int rng 12 in
    let rules =
      Array.init n (fun i ->
          let field = Ternary.random rng ~width:10 ~wildcard_prob:0.35 in
          Rule.make ~id:i ~field ~action:(Rule.Forward i)
            ~priority:(10 - Ternary.num_wildcards field))
    in
    let full = Dag_build.compile rules in
    let inc = Graph.create () in
    let existing = ref [] in
    Array.iter
      (fun r ->
        Dag_build.insert inc ~existing:!existing r;
        existing := r :: !existing)
      rules;
    check "incremental acyclic" true (Topo.is_acyclic inc);
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j then
          check "same closure" true
            (Topo.reachable full i j = Topo.reachable inc i j)
      done
    done
  done

let test_remove_contract () =
  let rules =
    [| rule ~id:0 "1*******"; rule ~id:1 "10******"; rule ~id:2 "100*****" |]
  in
  let g = Dag_build.compile rules in
  Dag_build.remove ~contract:true g 1;
  check "contracted edge" true (Graph.mem_edge g 0 2)

let suite =
  [
    ( "build",
      [
        Alcotest.test_case "chain transitive reduction" `Quick test_chain_reduction;
        Alcotest.test_case "disjoint rules" `Quick test_disjoint_no_edges;
        Alcotest.test_case "star families" `Quick test_star;
        Alcotest.test_case "equal-priority tiebreak" `Quick test_equal_priority_tiebreak;
        Alcotest.test_case "priority beats specificity" `Quick test_priority_beats_specificity;
        Alcotest.test_case "incremental dependencies_of" `Quick test_dependencies_of_incremental;
        Alcotest.test_case "incremental = full (closure)" `Quick
          test_incremental_matches_full_closure;
        Alcotest.test_case "compile acyclic & covering" `Quick test_compile_acyclic_and_covering;
        Alcotest.test_case "remove with contraction" `Quick test_remove_contract;
      ] );
  ]
