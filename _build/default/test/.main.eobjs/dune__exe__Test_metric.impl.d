test/test_metric.ml: Alcotest Dir Fastrule Fixtures Graph Metric Option Tcam
