test/test_check.ml: Alcotest Algo Check Fastrule Fixtures Greedy Op Result Tcam
