test/main.mli:
