test/test_measure.ml: Alcotest Array Fastrule Measure
