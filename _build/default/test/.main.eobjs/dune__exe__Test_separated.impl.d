test/test_separated.ml: Alcotest Algo Array Dir Fastrule Graph Layout List Metric Option Rng Separated Store Tcam Topo
