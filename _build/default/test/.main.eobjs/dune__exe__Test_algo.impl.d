test/test_algo.ml: Alcotest Algo Fastrule List Result Tcam
