test/test_workload.ml: Alcotest Array Dag_build Dag_stats Dataset Fastrule Graph Hashtbl Header List Printf Rule Ternary Topo
