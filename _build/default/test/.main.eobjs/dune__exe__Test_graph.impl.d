test/test_graph.ml: Alcotest Fastrule Graph Int List
