test/test_firmware.ml: Alcotest Array Dataset Fastrule Firmware Graph Int Layout Lazy List Measure Rng Store Tcam Topo Updates
