test/test_queue_sim.ml: Alcotest Array Dataset Fastrule Firmware Queue_sim Rng Store Updates
