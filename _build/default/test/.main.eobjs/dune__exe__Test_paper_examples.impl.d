test/test_paper_examples.ml: Alcotest Algo Array Dag_build Dataset Dir Fastrule Fixtures Graph Greedy Layout List Min_tree Naive Op Option Printf Rule Separated Store Tcam Ternary
