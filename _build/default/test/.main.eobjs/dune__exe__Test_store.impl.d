test/test_store.ml: Alcotest Dir Fastrule Fixtures Graph List Metric Printf Rng Store Tcam
