test/test_ternary.ml: Alcotest Fastrule List Rng String Ternary
