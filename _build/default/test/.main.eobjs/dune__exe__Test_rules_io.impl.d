test/test_rules_io.ml: Alcotest Array Dataset Fastrule Filename Fun List Result Rule Rules_io String Sys Ternary
