test/test_prng.ml: Alcotest Array Fastrule Fun Int List Printf Rng
