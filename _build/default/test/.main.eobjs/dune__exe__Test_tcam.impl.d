test/test_tcam.ml: Alcotest Fastrule Graph Header Op Result Rule String Tcam Ternary
