test/test_experiment.ml: Alcotest Dataset Experiment Fastrule Firmware List Measure Report Store String
