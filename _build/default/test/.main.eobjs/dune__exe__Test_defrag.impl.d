test/test_defrag.ml: Alcotest Array Check Dataset Defrag Fastrule Firmware Fun Graph Int Layout List Rng Store Tcam Updates
