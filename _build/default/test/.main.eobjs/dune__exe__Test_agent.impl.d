test/test_agent.ml: Agent Alcotest Array Dataset Fastrule Filename Firmware Fun Header List Option Result Rng Rule Store Sys Tcam Ternary
