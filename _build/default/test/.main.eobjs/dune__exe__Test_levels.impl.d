test/test_levels.ml: Alcotest Dag_stats Dataset Fastrule Graph Hashtbl Levels List
