test/test_ruletris.ml: Alcotest Algo Fastrule Fixtures Graph Greedy List Result Rng Ruletris Store Tcam
