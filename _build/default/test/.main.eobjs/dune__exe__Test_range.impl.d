test/test_range.ml: Alcotest Fastrule Header Int64 List Range Rng Ternary
