test/test_stats.ml: Alcotest Dag_stats Fastrule Graph Int List
