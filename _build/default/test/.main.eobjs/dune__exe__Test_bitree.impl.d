test/test_bitree.ml: Alcotest Array Fastrule Fenwick_sum List Min_tree Option Rng Segment_tree
