test/fixtures.ml: Array Fastrule Graph Int List Rng Tcam
