test/test_updates.ml: Alcotest Array Dataset Fastrule Firmware Graph Hashtbl List Rng Store Tcam Updates
