test/test_build.ml: Alcotest Array Dag_build Fastrule Graph List Rng Rule Ternary Topo
