test/test_hw_emu.ml: Alcotest Algo Array Dataset Fastrule Graph Greedy Hw_emu Latency Layout List Op Rng Tcam Updates
