test/test_rule.ml: Alcotest Fastrule Header Rule Ternary
