test/test_topo.ml: Alcotest Fastrule Graph Hashtbl Int List Rule Topo
