test/test_fastrule.ml: Alcotest Algo Array Dir Fastrule Fixtures Graph Greedy List Metric Op Option Printf Result Rng Store Tcam
