test/test_latency.ml: Alcotest Fastrule Latency Op
