test/test_header.ml: Alcotest Fastrule Header Rng Ternary
