test/test_overlap_index.ml: Alcotest Array Dag_build Dataset Fastrule Graph Header Int List Overlap_index Printf Rule Ternary
