test/test_naive.ml: Alcotest Algo Fastrule List Naive Option Result Tcam
