test/test_layout.ml: Alcotest Array Fastrule Layout Tcam
