open Fastrule

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let sorted_ids rules = List.sort Int.compare (List.map (fun (r : Rule.t) -> r.Rule.id) rules)

let brute_force rules (q : Rule.t) =
  Array.to_list rules
  |> List.filter (fun (r : Rule.t) -> r.Rule.id <> q.Rule.id && Rule.overlaps q r)
  |> sorted_ids

let test_matches_brute_force () =
  List.iter
    (fun kind ->
      let rules = Dataset.generate kind ~seed:13 ~n:250 in
      let idx = Overlap_index.create () in
      Array.iter (Overlap_index.add idx) rules;
      check_int "length" 250 (Overlap_index.length idx);
      Array.iter
        (fun q ->
          Alcotest.(check (list int))
            (Printf.sprintf "%s overlap set of %d" (Dataset.to_string kind) q.Rule.id)
            (brute_force rules q)
            (sorted_ids (Overlap_index.overlapping idx q)))
        rules)
    Dataset.extended

let test_add_remove () =
  let rules = Dataset.generate Dataset.FW4 ~seed:14 ~n:50 in
  let idx = Overlap_index.create () in
  Array.iter (Overlap_index.add idx) rules;
  Overlap_index.remove idx rules.(7);
  check_int "removed" 49 (Overlap_index.length idx);
  Array.iter
    (fun q ->
      if q.Rule.id <> 7 then
        check "7 never reported" false
          (List.exists (fun (r : Rule.t) -> r.Rule.id = 7)
             (Overlap_index.overlapping idx q)))
    rules;
  Overlap_index.add idx rules.(7);
  Overlap_index.add idx rules.(7);
  check_int "idempotent re-add" 50 (Overlap_index.length idx)

let test_candidates_narrow () =
  (* On a destination-clustered table the candidate superset must be far
     smaller than the table. *)
  let n = 2_000 in
  let rules = Dataset.generate Dataset.ACL5 ~seed:15 ~n in
  let idx = Overlap_index.create () in
  Array.iter (Overlap_index.add idx) rules;
  let total = ref 0 in
  Array.iter (fun q -> total := !total + Overlap_index.candidate_count idx q) rules;
  let avg = float_of_int !total /. float_of_int n in
  check "avg candidates << n" true (avg < float_of_int n /. 10.0)

let test_coarse_rules_always_candidates () =
  (* A wildcard-destination rule must appear in every query's candidates. *)
  let coarse =
    Rule.make ~id:900
      ~field:(Header.pack Header.wildcard)
      ~action:Rule.Drop ~priority:0
  in
  let rules = Dataset.generate Dataset.ACL4 ~seed:16 ~n:100 in
  let idx = Overlap_index.create () in
  Array.iter (Overlap_index.add idx) rules;
  Overlap_index.add idx coarse;
  Array.iter
    (fun q ->
      check "coarse reported" true
        (List.exists (fun (r : Rule.t) -> r.Rule.id = 900)
           (Overlap_index.overlapping idx q)))
    rules

let test_non_5tuple_rules_supported () =
  (* Toy-width rules fall into the coarse class but stay correct. *)
  let mk id s = Rule.make ~id ~field:(Ternary.of_string s) ~action:Rule.Drop ~priority:1 in
  let idx = Overlap_index.create () in
  List.iter (Overlap_index.add idx) [ mk 0 "1***"; mk 1 "10**"; mk 2 "0***" ];
  Alcotest.(check (list int)) "overlaps of 0" [ 1 ] (sorted_ids (Overlap_index.overlapping idx (mk 0 "1***")));
  Alcotest.(check (list int)) "overlaps of 2" [] (sorted_ids (Overlap_index.overlapping idx (mk 2 "0***")))

let test_compile_fast_equals_compile () =
  List.iter
    (fun kind ->
      let rules = Dataset.generate kind ~seed:17 ~n:400 in
      let a = Dag_build.compile rules in
      let b = Dag_build.compile_fast rules in
      check_int "edge count" (Graph.n_edges a) (Graph.n_edges b);
      Graph.iter_nodes a (fun u ->
          Alcotest.(check (list int))
            (Printf.sprintf "%s deps of %d" (Dataset.to_string kind) u)
            (List.sort Int.compare (Graph.deps a u))
            (List.sort Int.compare (Graph.deps b u))))
    Dataset.extended

let suite =
  [
    ( "overlap-index",
      [
        Alcotest.test_case "matches brute force" `Quick test_matches_brute_force;
        Alcotest.test_case "add/remove" `Quick test_add_remove;
        Alcotest.test_case "candidates narrow" `Quick test_candidates_narrow;
        Alcotest.test_case "coarse rules always reported" `Quick
          test_coarse_rules_always_candidates;
        Alcotest.test_case "non-5-tuple rules" `Quick test_non_5tuple_rules_supported;
        Alcotest.test_case "compile_fast = compile" `Quick test_compile_fast_equals_compile;
      ] );
  ]
