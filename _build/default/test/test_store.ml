open Fastrule

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let backends = Store.all_backends

let test_initial_values_agree () =
  let graph, tcam = Fixtures.fig3 () in
  List.iter
    (fun backend ->
      let s = Store.create ~backend ~dir:Dir.Up graph tcam in
      for a = 0 to Tcam.size tcam - 1 do
        check_int
          (Printf.sprintf "%s M(0x%x)" (Store.backend_to_string backend) a)
          (Metric.compute Dir.Up graph tcam ~addr:a)
          (Store.get s a)
      done)
    backends

let test_min_in_agree_across_backends () =
  let rng = Rng.create ~seed:77 in
  for _ = 1 to 20 do
    let graph, tcam = Fixtures.random_scenario rng ~size:32 ~k:24 ~edge_prob:0.08 in
    let stores =
      List.map (fun b -> Store.create ~backend:b ~dir:Dir.Up graph tcam) backends
    in
    for _ = 1 to 20 do
      let lo = Rng.int rng 32 in
      let hi = Rng.int_in rng lo 31 in
      match List.map (fun s -> Store.min_in s ~lo ~hi) stores with
      | [] -> assert false
      | reference :: rest ->
          List.iteri
            (fun i r ->
              check (Printf.sprintf "backend %d agrees" (i + 1)) true
                (r = reference))
            rest
    done
  done

let test_min_in_tiebreak_up () =
  (* Ties go to the candidate nearest the entries: the lowest address for
     the upward direction. *)
  let tcam = Tcam.create ~size:8 in
  Tcam.write tcam ~rule_id:0 ~addr:3;
  let g = Graph.create () in
  Graph.add_node g 0;
  List.iter
    (fun backend ->
      let s = Store.create ~backend ~dir:Dir.Up g tcam in
      (match Store.min_in s ~lo:0 ~hi:7 with
      | Some (a, v) ->
          check_int "free metric" 0 v;
          check_int "lowest free wins" 0 a
      | None -> Alcotest.fail "non-empty");
      match Store.min_in s ~lo:4 ~hi:7 with
      | Some (a, _) -> check_int "lowest in subrange" 4 a
      | None -> Alcotest.fail "non-empty")
    backends

let test_min_in_tiebreak_down () =
  (* Mirror: the highest address for the downward direction. *)
  let tcam = Tcam.create ~size:8 in
  Tcam.write tcam ~rule_id:0 ~addr:3;
  let g = Graph.create () in
  Graph.add_node g 0;
  List.iter
    (fun backend ->
      let s = Store.create ~backend ~dir:Dir.Down g tcam in
      match Store.min_in s ~lo:0 ~hi:7 with
      | Some (a, v) ->
          check_int "free metric" 0 v;
          check_int "highest free wins" 7 a
      | None -> Alcotest.fail "non-empty")
    backends

let test_refresh_after_move () =
  let graph, tcam = Fixtures.fig3 () in
  List.iter
    (fun backend ->
      let graph = Graph.copy graph and tcam = Tcam.copy tcam in
      let s = Store.create ~backend ~dir:Dir.Up graph tcam in
      (* Move entry 2 (0x6) to the free 0x9 and re-check all metrics:
         entry 4's chain shortens (its dep moved), address 0x6 frees. *)
      Tcam.write tcam ~rule_id:2 ~addr:0x9;
      Store.refresh s ~addrs:[ 0x6; 0x9 ] ~ids:[];
      for a = 0 to Tcam.size tcam - 1 do
        check_int
          (Printf.sprintf "%s after move M(0x%x)" (Store.backend_to_string backend) a)
          (Metric.compute Dir.Up graph tcam ~addr:a)
          (Store.get s a)
      done)
    backends

let test_refresh_after_delete () =
  let graph, tcam = Fixtures.fig3 () in
  List.iter
    (fun backend ->
      let graph = Graph.copy graph and tcam = Tcam.copy tcam in
      let s = Store.create ~backend ~dir:Dir.Up graph tcam in
      (* Delete entry 8 (at 0x7): the chains through it (5 -> 7 -> 8 -> 3)
         must shorten for 7 and 5 — that propagation is the point. *)
      let dependents = Graph.dependents graph 8 in
      Tcam.erase tcam ~addr:0x7;
      Graph.remove_node graph 8;
      Store.refresh s ~addrs:[ 0x7 ] ~ids:dependents;
      check_int "M(0x5) shortened" 1 (Store.get s 0x5);
      check_int "M(0x3) shortened" 2 (Store.get s 0x3);
      for a = 0 to Tcam.size tcam - 1 do
        check_int "full agreement" (Metric.compute Dir.Up graph tcam ~addr:a) (Store.get s a)
      done)
    backends

let test_rebuild () =
  let graph, tcam = Fixtures.fig3 () in
  let s = Store.create ~backend:Store.Bit_backend ~dir:Dir.Up graph tcam in
  (* Sabotage by mutating the TCAM without refresh, then rebuild. *)
  Tcam.write tcam ~rule_id:2 ~addr:0x9;
  Store.rebuild s;
  check_int "rebuilt" (Metric.compute Dir.Up graph tcam ~addr:0x6) (Store.get s 0x6)

let suite =
  [
    ( "store",
      [
        Alcotest.test_case "initial values agree" `Quick test_initial_values_agree;
        Alcotest.test_case "min_in agrees across backends" `Quick test_min_in_agree_across_backends;
        Alcotest.test_case "tiebreak up" `Quick test_min_in_tiebreak_up;
        Alcotest.test_case "tiebreak down" `Quick test_min_in_tiebreak_down;
        Alcotest.test_case "refresh after move" `Quick test_refresh_after_move;
        Alcotest.test_case "refresh after delete" `Quick test_refresh_after_delete;
        Alcotest.test_case "rebuild" `Quick test_rebuild;
      ] );
  ]
