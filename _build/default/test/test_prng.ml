open Fastrule

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_determinism () =
  let a = Rng.create ~seed:123 and b = Rng.create ~seed:123 in
  for _ = 1 to 100 do
    check "same stream" true (Rng.bits64 a = Rng.bits64 b)
  done;
  let c = Rng.create ~seed:124 in
  check "different seed diverges" false
    (List.init 10 (fun _ -> Rng.bits64 a) = List.init 10 (fun _ -> Rng.bits64 c))

let test_int_bounds () =
  let rng = Rng.create ~seed:1 in
  for _ = 1 to 1000 do
    let bound = 1 + Rng.int rng 100 in
    let x = Rng.int rng bound in
    check "in range" true (x >= 0 && x < bound)
  done;
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_int_in () =
  let rng = Rng.create ~seed:2 in
  for _ = 1 to 500 do
    let x = Rng.int_in rng (-5) 5 in
    check "inclusive range" true (x >= -5 && x <= 5)
  done;
  check_int "degenerate" 7 (Rng.int_in rng 7 7)

let test_float_range () =
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 1000 do
    let f = Rng.float rng in
    check "unit interval" true (f >= 0.0 && f < 1.0)
  done

let test_int_uniformish () =
  let rng = Rng.create ~seed:4 in
  let counts = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let x = Rng.int rng 10 in
    counts.(x) <- counts.(x) + 1
  done;
  Array.iteri
    (fun i c -> check (Printf.sprintf "bucket %d near 1000" i) true (c > 800 && c < 1200))
    counts

let test_split_independence () =
  let a = Rng.create ~seed:9 in
  let b = Rng.split a in
  check "split streams differ" false (Rng.bits64 a = Rng.bits64 b)

let test_copy () =
  let a = Rng.create ~seed:10 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  check "copy replays" true (Rng.bits64 a = Rng.bits64 b)

let test_shuffle_permutation () =
  let rng = Rng.create ~seed:11 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted;
  check "actually shuffled" false (a = Array.init 50 Fun.id)

let test_weighted () =
  let rng = Rng.create ~seed:12 in
  let hits = ref 0 in
  for _ = 1 to 5000 do
    if Rng.weighted rng [| (0.9, `A); (0.1, `B) |] = `A then incr hits
  done;
  check "weighting respected" true (!hits > 4200 && !hits < 4800);
  Alcotest.check_raises "all-zero" (Invalid_argument "Rng.weighted: weights sum to zero")
    (fun () -> ignore (Rng.weighted rng [| (0.0, `A) |]))

let test_chance_extremes () =
  let rng = Rng.create ~seed:13 in
  check "p=1" true (Rng.chance rng 1.0);
  check "p=0" false (Rng.chance rng 0.0)

let test_geometric () =
  let rng = Rng.create ~seed:14 in
  check_int "p=1 is 0" 0 (Rng.geometric rng ~p:1.0);
  let total = ref 0 in
  for _ = 1 to 2000 do
    let g = Rng.geometric rng ~p:0.5 in
    check "non-negative" true (g >= 0);
    total := !total + g
  done;
  (* mean of Geom(0.5) failures = 1 *)
  let mean = float_of_int !total /. 2000.0 in
  check "mean near 1" true (mean > 0.8 && mean < 1.2)

let test_pick () =
  let rng = Rng.create ~seed:15 in
  check_int "singleton array" 5 (Rng.pick rng [| 5 |]);
  check_int "singleton list" 6 (Rng.pick_list rng [ 6 ]);
  Alcotest.check_raises "empty" (Invalid_argument "Rng.pick: empty array") (fun () ->
      ignore (Rng.pick rng [||]))

let suite =
  [
    ( "prng",
      [
        Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "int bounds" `Quick test_int_bounds;
        Alcotest.test_case "int_in" `Quick test_int_in;
        Alcotest.test_case "float range" `Quick test_float_range;
        Alcotest.test_case "uniformity" `Quick test_int_uniformish;
        Alcotest.test_case "split" `Quick test_split_independence;
        Alcotest.test_case "copy" `Quick test_copy;
        Alcotest.test_case "shuffle" `Quick test_shuffle_permutation;
        Alcotest.test_case "weighted" `Quick test_weighted;
        Alcotest.test_case "chance extremes" `Quick test_chance_extremes;
        Alcotest.test_case "geometric" `Quick test_geometric;
        Alcotest.test_case "pick" `Quick test_pick;
      ] );
  ]
