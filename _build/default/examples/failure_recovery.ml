(* Failure recovery: can the switch re-route within the carrier deadline?

   The paper's introduction motivates fast updates with carrier-network
   failure recovery: after a link failure, re-routing "has to be finished
   within 25 ms" (MPLS transport profile) to avoid congestion and loss.
   Re-routing means a burst of flow-entry updates hitting one switch.

   This example simulates a link failure that forces [burst] rules of a
   2k-entry FW5 table to be replaced (delete old path + insert new path),
   and asks, per scheduler: how many re-routed flows make the 25 ms
   deadline, and how long does the whole burst take?  Total latency per
   update = firmware time (measured) + TCAM time (0.6 ms per hardware
   write, the model both FastRule and RuleTris use).

   Run with:  dune exec examples/failure_recovery.exe *)

open Fastrule

let deadline_ms = 25.0
let n = 2_000
let burst = 40

let () =
  Format.printf "=== Failure recovery: %d re-routed flows, %.0f ms deadline ===@.@."
    burst deadline_ms;
  let table = Dataset.build_table Dataset.FW5 ~seed:7 ~n in
  let rng = Rng.create ~seed:99 in
  (* A re-route = delete the old entry, insert its replacement: an
     alternating stream of 2 x burst updates. *)
  let stream =
    Updates.generate rng
      ~live:(Array.to_list table.Dataset.order)
      ~count:(2 * burst) ~with_deletes:true ~id_base:n
  in
  let latency = Latency.default in
  Format.printf "%-10s %14s %14s %14s %10s@." "algo" "burst total(ms)"
    "worst flow(ms)" "mean flow(ms)" "made 25ms";
  List.iter
    (fun kind ->
      let run =
        Firmware.create ~latency ~check_invariant:true kind ~table
          ~tcam_size:(2 * n) ()
      in
      (* Walk the stream in insert/delete pairs: one pair = one flow
         re-route; its latency is the pair's firmware + TCAM time. *)
      let flow_latencies = ref [] in
      let rec pairs = function
        | ins :: del :: rest ->
            let writes_before = Firmware.tcam_writes run + Firmware.tcam_erases run in
            let fw_before =
              (Measure.Series.summary (Firmware.firmware_times run)).Measure.total
            in
            ignore (Firmware.exec run ins);
            ignore (Firmware.exec run del);
            let fw_after =
              (Measure.Series.summary (Firmware.firmware_times run)).Measure.total
            in
            let writes_after = Firmware.tcam_writes run + Firmware.tcam_erases run in
            let tcam_ms =
              Latency.ops_ms latency
                ~writes:(writes_after - writes_before)
                ~erases:0
            in
            flow_latencies := (fw_after -. fw_before +. tcam_ms) :: !flow_latencies;
            pairs rest
        | [ single ] ->
            ignore (Firmware.exec run single);
            []
        | [] -> []
      in
      ignore (pairs stream);
      let lats = Array.of_list !flow_latencies in
      let s = Measure.summarize lats in
      let made =
        Array.fold_left (fun acc l -> if l <= deadline_ms then acc + 1 else acc) 0 lats
      in
      Format.printf "%-10s %14.1f %14.2f %14.2f %6d/%d@."
        (Firmware.algo_kind_name kind) s.Measure.total s.Measure.max
        s.Measure.mean made (Array.length lats))
    [
      Firmware.Naive;
      Firmware.Ruletris;
      Firmware.FR_O Store.Bit_backend;
      Firmware.FR_SD Store.Bit_backend;
    ];
  Format.printf
    "@.Reading: with the naive priority firmware a single re-route moves \
     ~n/2 entries at 0.6 ms each — hopeless against 25 ms.  The DAG-based \
     schedulers move ~c_avg entries; FastRule additionally makes the \
     firmware computation negligible.@."
