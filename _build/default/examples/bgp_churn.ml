(* BGP churn: sustained route-update throughput of a TCAM switch.

   Measurements cited by the paper ([11], Huang et al.) put a commercial
   OpenFlow switch at ~42 rule updates per second — the control loop
   chokes on the data plane.  This example drives a ROUTE table with
   sustained insert+delete churn (routes being announced and withdrawn)
   and reports the sustainable update rate per scheduler:

     rate = 1000 / (mean firmware ms + mean TCAM ms per update)

   Run with:  dune exec examples/bgp_churn.exe [n] *)

open Fastrule

let () =
  let n =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 4_000
  in
  let churn = Experiment.updates_for n in
  Format.printf "=== BGP churn on a %d-prefix table, %d updates ===@.@." n churn;
  let table = Dataset.build_table Dataset.ROUTE ~seed:11 ~n in
  let spec =
    { Experiment.kind = Dataset.ROUTE; n; updates = churn; with_deletes = true; seed = 11 }
  in
  let stream = Experiment.stream_for spec in
  Format.printf "%-10s %12s %12s %14s %16s@." "algo" "fw(ms/upd)"
    "tcam(ms/upd)" "total(ms/upd)" "updates/second";
  List.iter
    (fun kind ->
      let cap =
        match kind with Firmware.Naive -> Some 60 | _ -> None
      in
      let row = Experiment.run_one ?cap ~table ~stream kind in
      let total = row.Experiment.fw.Measure.mean +. row.Experiment.tcam_avg_ms in
      Format.printf "%-10s %12.4f %12.4f %14.4f %16.0f@." row.Experiment.algo
        row.Experiment.fw.Measure.mean row.Experiment.tcam_avg_ms total
        (1000.0 /. total))
    (Firmware.standard_algos Store.Bit_backend);
  Format.printf
    "@.Reference point: the measured commercial switch sustains ~42 \
     updates/s.  The TCAM write (0.6 ms) bounds any scheduler at ~1600/s \
     for single-move updates; FastRule gets within a whisker of that bound \
     because its sequences are ~c_avg writes and its firmware time is \
     microseconds.@."
