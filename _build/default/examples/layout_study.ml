(* Layout study: where should a TCAM keep its free space?

   §V of the paper examines three layouts — packed-with-free-on-top
   (original), interleaved gaps every K entries (TreeCAM-style), and the
   separated layout with the free pool in the middle plus two delete
   behaviours (dirty vs balance).  This example runs the same ACL4
   workload over all of them and prints firmware time, modelled TCAM
   time, movement counts, and the separated layout's live region
   occupancy, for both an insert-only and a half-deletes stream.

   Run with:  dune exec examples/layout_study.exe *)

open Fastrule

let n = 2_000
let seed = 5

let run_case ~with_deletes =
  Format.printf "@.--- %s stream ---@."
    (if with_deletes then "insert+delete" else "insert-only");
  let table = Experiment.table_cached Dataset.ACL4 ~seed ~n in
  let spec =
    {
      Experiment.kind = Dataset.ACL4;
      n;
      updates = Experiment.updates_for n;
      with_deletes;
      seed;
    }
  in
  let stream = Experiment.stream_for spec in
  Format.printf "%-22s %12s %12s %8s %8s@." "configuration" "fw-mean(ms)"
    "tcam-avg(ms)" "moves" "seq-len";
  let show name (row : Experiment.row) =
    Format.printf "%-22s %12.5f %12.4f %8d %8.2f@." name
      row.Experiment.fw.Measure.mean row.Experiment.tcam_avg_ms
      row.Experiment.moves row.Experiment.seq_len_mean
  in
  let fr = Firmware.FR_O Store.Bit_backend in
  show "original (FR-O)" (Experiment.run_one ~table ~stream fr);
  List.iter
    (fun k ->
      show
        (Printf.sprintf "interleaved K=%d" k)
        (Experiment.run_one ~layout_override:(Layout.Interleaved k) ~table
           ~stream fr))
    [ 8; 2 ];
  show "separated+dirty (SD)"
    (Experiment.run_one ~table ~stream (Firmware.FR_SD Store.Bit_backend));
  show "separated+balance (SB)"
    (Experiment.run_one ~table ~stream (Firmware.FR_SB Store.Bit_backend))

let show_regions () =
  (* Peek at the separated layout's region bookkeeping after a run. *)
  let table = Experiment.table_cached Dataset.ACL4 ~seed ~n in
  let rng = Rng.create ~seed:21 in
  let stream =
    Updates.generate rng
      ~live:(Array.to_list table.Dataset.order)
      ~count:500 ~with_deletes:true ~id_base:n
  in
  let tcam =
    Layout.place Layout.Separated ~tcam_size:(2 * n) ~order:table.Dataset.order
  in
  let graph = Graph.copy table.Dataset.graph in
  let st = Separated.create ~delete_mode:Separated.Balance ~graph ~tcam () in
  let algo = Separated.algo st in
  List.iter
    (fun u ->
      match Updates.resolve graph tcam u with
      | Updates.R_insert { id; deps; dependents } as r -> (
          Updates.apply_graph graph r;
          match algo.Algo.schedule_insert ~rule_id:id ~deps ~dependents with
          | Ok ops ->
              Tcam.apply_sequence tcam ops;
              algo.Algo.after_apply ops
          | Error _ -> Graph.remove_node graph id)
      | Updates.R_delete { id } as r -> (
          match algo.Algo.schedule_delete ~rule_id:id with
          | Ok ops ->
              Tcam.apply_sequence tcam ops;
              Updates.apply_graph graph r;
              algo.Algo.after_apply ops
          | Error _ -> ()))
    stream;
  let r = Separated.regions st in
  Format.printf
    "@.Separated regions after 500 mixed updates (TCAM size %d):@." (2 * n);
  Format.printf "  bottom region: [0, %d)  holding %d entries@."
    r.Layout.bottom_next r.Layout.bottom_count;
  Format.printf "  middle pool:   [%d, %d]  (%d free slots)@."
    r.Layout.bottom_next r.Layout.top_next (Layout.middle_free r);
  Format.printf "  top region:    (%d, %d)  holding %d entries@." r.Layout.top_next
    (2 * n) r.Layout.top_count;
  Format.printf "  balance kept the regions hole-free: %s@."
    (match Tcam.check_dag_order tcam graph with Ok () -> "invariant OK" | Error e -> e)

let () =
  Format.printf "=== TCAM layout study (ACL4, n=%d) ===@." n;
  run_case ~with_deletes:false;
  run_case ~with_deletes:true;
  show_regions ()
