(* Agent demo: programming the switch through flow-mods.

   A miniature SDN application drives the {!Fastrule.Agent} — the
   OpenFlow-facing table manager built on the FastRule scheduler.  The
   scenario: a small firewall policy is installed in bulk, a load
   balancer then steers an elephant flow by adding a specific rule,
   re-steers it by rewriting the action in place (one hardware write!),
   and finally withdraws it.  After every step the hardware lookup is
   checked against the linear specification.

   Run with:  dune exec examples/agent_demo.exe *)

open Fastrule

let ip_prefix plen v = Ternary.prefix_of_int64 ~width:32 ~plen v
let port p = Ternary.exact_of_int64 ~width:16 (Int64.of_int p)
let tcp = Ternary.exact_of_int64 ~width:8 6L

let step agent rng label =
  let consistent = ref true in
  List.iter
    (fun (r : Rule.t) ->
      let pkt = Header.packet_in rng r.Rule.field in
      let hw = Agent.lookup agent pkt and spec = Agent.semantic_lookup agent pkt in
      match (hw, spec) with
      | Some a, Some b when a.Rule.id = b.Rule.id -> ()
      | _ -> consistent := false)
    (Agent.rules agent);
  Format.printf "%-42s rules=%-3d fw=%6.3fms tcam=%6.1fms  lookup=spec: %s@."
    label (Agent.rule_count agent)
    (Agent.firmware_ms_total agent)
    (Agent.tcam_ms_total agent)
    (if !consistent then "yes" else "NO!")

let () =
  Format.printf "=== Switch agent demo ===@.@.";
  let rng = Rng.create ~seed:77 in

  (* A firewall baseline: default-drop plus some allowed services. *)
  let baseline =
    Array.append
      [|
        Rule.make ~id:0
          ~field:(Header.pack Header.wildcard)
          ~action:Rule.Drop ~priority:0;
      |]
      (Array.init 30 (fun i ->
           let spec =
             {
               Header.wildcard with
               Header.dst_ip = ip_prefix 24 (Int64.of_int ((10 lsl 24) lor (i lsl 8)));
               dst_port = port (if i mod 2 = 0 then 80 else 443);
               proto = tcp;
             }
           in
           Rule.make ~id:(i + 1) ~field:(Header.pack spec)
             ~action:(Rule.Forward (i mod 4))
             ~priority:(Header.total_width - Ternary.num_wildcards (Header.pack spec))))
  in
  let agent = Agent.of_rules ~verify:true ~capacity:128 baseline in
  step agent rng "bulk-loaded baseline policy";

  (* The load balancer pins an elephant flow to port 7. *)
  let elephant_spec =
    {
      Header.wildcard with
      Header.src_ip = ip_prefix 32 0xC0A80007L;
      dst_ip = ip_prefix 24 0x0A000000L;
      dst_port = port 80;
      proto = tcp;
    }
  in
  let elephant =
    Rule.make ~id:1000
      ~field:(Header.pack elephant_spec)
      ~action:(Rule.Forward 7)
      ~priority:(Header.total_width - Ternary.num_wildcards (Header.pack elephant_spec))
  in
  (match Agent.apply agent (Agent.Add elephant) with
  | Ok () -> ()
  | Error e -> Format.printf "add failed: %s@." e);
  step agent rng "pinned elephant flow to port 7";

  let pkt = Header.packet_in rng elephant.Rule.field in
  (match Agent.lookup agent pkt with
  | Some r -> Format.printf "  -> elephant packet hits rule %d (%a)@." r.Rule.id
                Rule.pp_action r.Rule.action
  | None -> Format.printf "  -> elephant packet missed?!@.");

  (* Port 7 drains; re-steer with an in-place action rewrite. *)
  (match Agent.apply agent (Agent.Set_action { id = 1000; action = Rule.Forward 2 }) with
  | Ok () -> ()
  | Error e -> Format.printf "set-action failed: %s@." e);
  step agent rng "re-steered to port 2 (in-place write)";

  (* Flow ends; withdraw the pin. *)
  (match Agent.apply agent (Agent.Remove { id = 1000 }) with
  | Ok () -> ()
  | Error e -> Format.printf "remove failed: %s@." e);
  step agent rng "withdrew the pin";

  match Agent.lookup agent pkt with
  | Some r ->
      Format.printf "  -> elephant packet now handled by rule %d (%a)@."
        r.Rule.id Rule.pp_action r.Rule.action
  | None -> Format.printf "  -> elephant packet now unmatched@."
