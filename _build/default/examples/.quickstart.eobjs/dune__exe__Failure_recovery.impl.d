examples/failure_recovery.ml: Array Dataset Fastrule Firmware Format Latency List Measure Rng Store Updates
