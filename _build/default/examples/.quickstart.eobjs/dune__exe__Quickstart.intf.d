examples/quickstart.mli:
