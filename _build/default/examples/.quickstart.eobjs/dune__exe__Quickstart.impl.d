examples/quickstart.ml: Algo Array Dag_build Dataset Fastrule Fmt Format Graph Greedy Header Int64 Layout List Op Rule Store Tcam Ternary
