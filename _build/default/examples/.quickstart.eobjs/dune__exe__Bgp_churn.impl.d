examples/bgp_churn.ml: Array Dataset Experiment Fastrule Firmware Format List Measure Store Sys
