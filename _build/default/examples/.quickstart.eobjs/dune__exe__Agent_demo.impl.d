examples/agent_demo.ml: Agent Array Fastrule Format Header Int64 List Rng Rule Ternary
