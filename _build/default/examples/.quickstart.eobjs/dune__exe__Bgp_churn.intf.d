examples/bgp_churn.mli:
