examples/layout_study.ml: Algo Array Dataset Experiment Fastrule Firmware Format Graph Layout List Measure Printf Rng Separated Store Tcam Updates
