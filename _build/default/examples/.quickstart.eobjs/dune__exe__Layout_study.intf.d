examples/layout_study.mli:
