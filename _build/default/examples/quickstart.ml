(* Quickstart: the full FastRule pipeline on a small ACL table.

   Build a policy, compile its minimum dependency graph, place it in a
   TCAM, and push one real rule insertion through the FastRule scheduler —
   printing the dependency analysis, the update sequence, and the before /
   after TCAM images.

   Run with:  dune exec examples/quickstart.exe *)

open Fastrule

let rule id prio spec =
  Rule.make ~id ~field:(Header.pack spec) ~action:(Rule.Forward id)
    ~priority:prio

let ip_prefix plen v = Ternary.prefix_of_int64 ~width:32 ~plen v
let port p = Ternary.exact_of_int64 ~width:16 (Int64.of_int p)
let proto p = Ternary.exact_of_int64 ~width:8 (Int64.of_int p)

(* A tiny access-control policy: a default rule, a subnet rule, a host
   rule inside the subnet, and an unrelated service rule. *)
let policy =
  [|
    rule 0 1 Header.wildcard (* match-all fallback *);
    rule 1 10 { Header.wildcard with Header.dst_ip = ip_prefix 16 0x0A0A0000L };
    rule 2 20 { Header.wildcard with Header.dst_ip = ip_prefix 32 0x0A0A0001L };
    rule 3 15 { Header.wildcard with Header.dst_port = port 22; proto = proto 6 };
  |]

let show_tcam tcam =
  for a = Tcam.size tcam - 1 downto 0 do
    match Tcam.read tcam a with
    | Tcam.Used id -> Format.printf "    0x%x: rule %d@." a id
    | Tcam.Free -> Format.printf "    0x%x: (free)@." a
  done

let () =
  Format.printf "=== FastRule quickstart ===@.@.";

  (* 1. Compile the policy into the minimum dependency graph. *)
  let graph = Dag_build.compile policy in
  Format.printf "Dependency graph (u -> v means v must be matched first):@.%a@."
    Graph.pp graph;

  (* 2. Place the table in a TCAM (free space on top = original layout). *)
  let order = Dataset.precedence_order policy in
  let tcam = Layout.place Layout.Original ~tcam_size:8 ~order in
  Format.printf "Initial TCAM image:@.";
  show_tcam tcam;

  (* 3. Create the FastRule scheduler (BIT metric back-end). *)
  let fr = Greedy.create ~backend:Store.Bit_backend ~graph ~tcam () in
  let algo = Greedy.algo fr in

  (* 4. A new rule arrives: SSH to the specific host — it must beat both
     the host rule and the SSH rule. *)
  let incoming =
    rule 9 30
      {
        Header.wildcard with
        Header.dst_ip = ip_prefix 32 0x0A0A0001L;
        dst_port = port 22;
        proto = proto 6;
      }
  in
  let deps, dependents =
    Dag_build.dependencies_of graph ~existing:(Array.to_list policy) incoming
  in
  Format.printf "@.Inserting rule 9 (SSH to host 10.10.0.1):@.";
  Format.printf "  must sit below entries: %a@."
    Fmt.(list ~sep:comma int) deps;
  Format.printf "  must sit above entries: %a@."
    Fmt.(list ~sep:comma int) dependents;

  (* 5. Compiler stage: extend the graph; scheduler stage: compute the
     update sequence; TCAM stage: apply it. *)
  Graph.add_node graph incoming.Rule.id;
  List.iter (fun v -> Graph.add_edge graph incoming.Rule.id v) deps;
  List.iter (fun u -> Graph.add_edge graph u incoming.Rule.id) dependents;
  (match
     algo.Algo.schedule_insert ~rule_id:incoming.Rule.id ~deps ~dependents
   with
  | Error msg -> Format.printf "scheduling failed: %s@." msg
  | Ok ops ->
      Format.printf "@.Update sequence (application order): %a@."
        Op.pp_sequence ops;
      Tcam.apply_sequence tcam ops;
      algo.Algo.after_apply ops;
      Format.printf "@.TCAM image after the update:@.";
      show_tcam tcam;
      (match Tcam.check_dag_order tcam graph with
      | Ok () -> Format.printf "@.Dependency invariant: OK@."
      | Error e -> Format.printf "@.Dependency invariant VIOLATED: %s@." e));

  (* 6. Sanity: look a packet up — SSH to the host must now hit rule 9. *)
  let rules id =
    if id = incoming.Rule.id then incoming
    else Array.get policy (Array.to_list policy
                           |> List.mapi (fun i (r : Rule.t) -> (r.Rule.id, i))
                           |> List.assoc id)
  in
  let pkt =
    {
      Header.p_src_ip = 0x01020304L;
      p_dst_ip = 0x0A0A0001L;
      p_src_port = 50_000;
      p_dst_port = 22;
      p_proto = 6;
    }
  in
  match Tcam.lookup tcam ~rules pkt with
  | Some id -> Format.printf "Lookup ssh->10.10.0.1 hits rule %d (expected 9)@." id
  | None -> Format.printf "Lookup missed (unexpected)@."
