(** The original Binary Indexed Tree (Fenwick tree) over integer sums —
    §IV.E.1 of the paper.

    Maintains an array [R] of [n] integers supporting point increment and
    prefix/range sums in O(log n).  The modified range-minimum variant used
    by FastRule lives in {!Min_tree}; this module exists because the paper
    derives the modified structure from it, and the test suite checks both
    against naive references.  Indices are 0-based externally. *)

type t

val create : int -> t
(** [create n] — n zero cells.  [n >= 0]. *)

val size : t -> int

val add : t -> int -> int -> unit
(** [add t i delta] adds [delta] to cell [i].  O(log n). *)

val set : t -> int -> int -> unit
(** [set t i v] point assignment (reads the current value first). *)

val get : t -> int -> int
(** Current value of cell [i]. *)

val prefix_sum : t -> int -> int
(** [prefix_sum t i] = sum of cells [0..i] inclusive; 0 when [i < 0]. *)

val range_sum : t -> int -> int -> int
(** [range_sum t lo hi] = sum of cells [lo..hi] inclusive (0 if empty). *)

val total : t -> int
