(** Array-backed segment tree over integers with range-minimum + argmin.

    An alternative to the paper's modified BIT ({!Min_tree}): both answer
    range-minimum queries over a mutable array, but the segment tree's
    point assignment is O(log n) where the BIT pays O((log n)^2)
    (re-deriving each enclosing block from its children), at the price of
    2x the memory and slightly slower queries in practice.  The repository
    ships both so the trade-off can be measured (DESIGN.md §7, ablation
    bench) — FastRule's complexity would be O(c_avg log n) on this
    structure.

    Tie-breaking matches {!Min_tree}: the {e highest} index among equal
    minima wins.  Indices are 0-based. *)

type t

val create : int -> init:int -> t
(** [create n ~init] — [n] cells all holding [init].  [n >= 0]. *)

val size : t -> int

val get : t -> int -> int
(** O(1). *)

val set : t -> int -> int -> unit
(** Point assignment, O(log n). *)

val min_in : t -> lo:int -> hi:int -> (int * int) option
(** [(index, value)] minimising over the inclusive range, highest index on
    ties; [None] when empty.  Out-of-range endpoints are clamped.
    O(log n). *)

val min_value_in : t -> lo:int -> hi:int -> int option

val to_array : t -> int array
