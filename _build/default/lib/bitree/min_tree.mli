(** The modified Binary Indexed Tree of §IV.E.2–3: range-minimum queries
    with argmin, under point {e assignment} (values may go up or down).

    Block [B(x)] stores the minimum of cells [(x - lowbit x, x]] together
    with the index achieving it.  A query over an arbitrary range walks from
    the high end, consuming whole blocks when they fit and single cells
    otherwise — O(log n) block steps, O((log n)^2) worst case.  A point
    assignment recomputes every enclosing block from its child blocks plus
    its own cell, O((log n)^2), exactly the costs the paper states.

    Tie-breaking matters to FastRule: Algorithm 1 scans candidate addresses
    in ascending order and replaces the incumbent on [M(k) <= h], so the
    {e highest} index among equal minima wins.  This structure implements
    the same policy, which keeps the BIT back-end's decisions bit-identical
    to the on-demand and array back-ends.

    Indices are 0-based externally. *)

type t

val create : int -> init:int -> t
(** [create n ~init] — [n] cells all holding [init].  [n >= 0]. *)

val size : t -> int

val get : t -> int -> int
(** O(1). *)

val set : t -> int -> int -> unit
(** Point assignment, O((log n)^2). *)

val min_in : t -> lo:int -> hi:int -> (int * int) option
(** [min_in t ~lo ~hi] is [Some (index, value)] minimising the value over
    the inclusive range, the highest index winning ties; [None] when the
    range is empty ([lo > hi]).  Out-of-bounds endpoints are clamped.
    O((log n)^2). *)

val min_value_in : t -> lo:int -> hi:int -> int option
(** Value-only variant of {!min_in}. *)

val to_array : t -> int array
(** Snapshot of the cell values (for tests and debugging). *)
