lib/bitree/min_tree.ml: Array Option
