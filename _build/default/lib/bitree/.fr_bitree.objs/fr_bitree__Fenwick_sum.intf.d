lib/bitree/fenwick_sum.mli:
