lib/bitree/min_tree.mli:
