lib/bitree/segment_tree.ml: Array Option
