lib/bitree/fenwick_sum.ml: Array
