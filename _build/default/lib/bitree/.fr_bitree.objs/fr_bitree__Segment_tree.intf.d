lib/bitree/segment_tree.mli:
