(* 1-indexed internally: cell i lives at a.(i); block x = (x - lowbit x, x]
   with minimum bmin.(x) achieved at index barg.(x).

   Block recomputation uses the identity
     B[x] = min(a[x], B[x-1], B[x-2], ..., B[x - 2^k])   for 2^k < lowbit x
   (the child blocks tile (x - lowbit x, x - 1]).

   Everything uses strict [<] when replacing the incumbent; combined with
   visiting higher indices first, this makes the highest index win ties —
   the same policy as Algorithm 1's ascending scan with [<=]. *)

type t = { n : int; a : int array; bmin : int array; barg : int array }

let lowbit x = x land -x

let recompute t x =
  let best_v = ref t.a.(x) and best_i = ref x in
  let k = ref 1 in
  while !k < lowbit x do
    let c = x - !k in
    if t.bmin.(c) < !best_v then begin
      best_v := t.bmin.(c);
      best_i := t.barg.(c)
    end;
    k := !k * 2
  done;
  t.bmin.(x) <- !best_v;
  t.barg.(x) <- !best_i

let create n ~init =
  if n < 0 then invalid_arg "Min_tree.create: negative size";
  let t =
    {
      n;
      a = Array.make (n + 1) init;
      bmin = Array.make (n + 1) init;
      barg = Array.make (n + 1) 0;
    }
  in
  for x = 1 to n do
    recompute t x
  done;
  t

let size t = t.n

let get t i =
  if i < 0 || i >= t.n then invalid_arg "Min_tree.get: index out of range";
  t.a.(i + 1)

let set t i v =
  if i < 0 || i >= t.n then invalid_arg "Min_tree.set: index out of range";
  let i = i + 1 in
  t.a.(i) <- v;
  let j = ref i in
  while !j <= t.n do
    recompute t !j;
    j := !j + lowbit !j
  done

let min_in t ~lo ~hi =
  let l = max 1 (lo + 1) and h = min t.n (hi + 1) in
  if l > h then None
  else begin
    let best_v = ref max_int and best_i = ref (-1) in
    let j = ref h in
    while !j >= l do
      if !j - lowbit !j + 1 >= l then begin
        (* [best_i = -1] guard: even an all-max_int range must report an
           index, and strict [<] alone would never install one. *)
        if t.bmin.(!j) < !best_v || !best_i = -1 then begin
          best_v := t.bmin.(!j);
          best_i := t.barg.(!j)
        end;
        j := !j - lowbit !j
      end
      else begin
        if t.a.(!j) < !best_v || !best_i = -1 then begin
          best_v := t.a.(!j);
          best_i := !j
        end;
        decr j
      end
    done;
    Some (!best_i - 1, !best_v)
  end

let min_value_in t ~lo ~hi = Option.map snd (min_in t ~lo ~hi)

let to_array t = Array.sub t.a 1 t.n
