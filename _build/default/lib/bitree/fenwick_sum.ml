(* Standard Fenwick tree, 1-indexed internally.  b.(x) stores the sum of
   cells (x - lowbit x, x]. *)

type t = { n : int; b : int array }

let lowbit x = x land -x

let create n =
  if n < 0 then invalid_arg "Fenwick_sum.create: negative size";
  { n; b = Array.make (n + 1) 0 }

let size t = t.n

let add t i delta =
  if i < 0 || i >= t.n then invalid_arg "Fenwick_sum.add: index out of range";
  let j = ref (i + 1) in
  while !j <= t.n do
    t.b.(!j) <- t.b.(!j) + delta;
    j := !j + lowbit !j
  done

let prefix_sum t i =
  if i >= t.n then invalid_arg "Fenwick_sum.prefix_sum: index out of range";
  let acc = ref 0 in
  let j = ref (i + 1) in
  while !j > 0 do
    acc := !acc + t.b.(!j);
    j := !j - lowbit !j
  done;
  !acc

let range_sum t lo hi =
  if lo > hi then 0
  else
    let high = prefix_sum t hi in
    if lo = 0 then high else high - prefix_sum t (lo - 1)

let get t i = range_sum t i i

let set t i v = add t i (v - get t i)

let total t = if t.n = 0 then 0 else prefix_sum t (t.n - 1)
