(* Iterative bottom-up segment tree.  Leaves live at [cap, cap + n) where
   cap is the least power of two >= n; node k covers nodes 2k and 2k+1.
   Queries decompose the range into canonical segments, all of which lie
   fully inside [lo, hi], so the max_int padding leaves never surface. *)

type t = {
  n : int;
  cap : int;
  minv : int array;  (* length 2*cap *)
  arg : int array;  (* index (0-based cell) achieving minv *)
}

let rec pow2_at_least k x = if x >= k then x else pow2_at_least k (2 * x)

let merge_up t k =
  let l = 2 * k and r = (2 * k) + 1 in
  (* Right covers higher indices: on ties it wins, matching Min_tree. *)
  if t.minv.(r) <= t.minv.(l) then begin
    t.minv.(k) <- t.minv.(r);
    t.arg.(k) <- t.arg.(r)
  end
  else begin
    t.minv.(k) <- t.minv.(l);
    t.arg.(k) <- t.arg.(l)
  end

let create n ~init =
  if n < 0 then invalid_arg "Segment_tree.create: negative size";
  let cap = if n = 0 then 1 else pow2_at_least n 1 in
  let minv = Array.make (2 * cap) max_int in
  let arg = Array.make (2 * cap) (-1) in
  for i = 0 to n - 1 do
    minv.(cap + i) <- init;
    arg.(cap + i) <- i
  done;
  for i = n to cap - 1 do
    arg.(cap + i) <- i
  done;
  let t = { n; cap; minv; arg } in
  for k = cap - 1 downto 1 do
    merge_up t k
  done;
  t

let size t = t.n

let get t i =
  if i < 0 || i >= t.n then invalid_arg "Segment_tree.get: index out of range";
  t.minv.(t.cap + i)

let set t i v =
  if i < 0 || i >= t.n then invalid_arg "Segment_tree.set: index out of range";
  let k = ref (t.cap + i) in
  t.minv.(!k) <- v;
  k := !k / 2;
  while !k >= 1 do
    merge_up t !k;
    k := !k / 2
  done

let min_in t ~lo ~hi =
  let lo = max 0 lo and hi = min (t.n - 1) hi in
  if lo > hi then None
  else begin
    let best_v = ref max_int and best_i = ref (-1) in
    let consider k =
      let v = t.minv.(k) and i = t.arg.(k) in
      if v < !best_v || (v = !best_v && i > !best_i) then begin
        best_v := v;
        best_i := i
      end
    in
    let l = ref (t.cap + lo) and r = ref (t.cap + hi + 1) in
    while !l < !r do
      if !l land 1 = 1 then begin
        consider !l;
        incr l
      end;
      if !r land 1 = 1 then begin
        decr r;
        consider !r
      end;
      l := !l / 2;
      r := !r / 2
    done;
    Some (!best_i, !best_v)
  end

let min_value_in t ~lo ~hi = Option.map snd (min_in t ~lo ~hi)

let to_array t = Array.init t.n (fun i -> t.minv.(t.cap + i))
