type t = { write_ms : float; erase_ms : float }

let default = { write_ms = 0.6; erase_ms = 0.6 }

let make ?(write_ms = default.write_ms) ?(erase_ms = default.erase_ms) () =
  if write_ms < 0.0 || erase_ms < 0.0 then
    invalid_arg "Latency.make: costs must be non-negative";
  { write_ms; erase_ms }

let sequence_ms t ops =
  List.fold_left
    (fun acc op ->
      match op with
      | Op.Insert _ -> acc +. t.write_ms
      | Op.Delete _ -> acc +. t.erase_ms)
    0.0 ops

let ops_ms t ~writes ~erases =
  (float_of_int writes *. t.write_ms) +. (float_of_int erases *. t.erase_ms)
