type t = Insert of { rule_id : int; addr : int } | Delete of { addr : int }

let insert ~rule_id ~addr = Insert { rule_id; addr }
let delete ~addr = Delete { addr }

let addr = function Insert { addr; _ } -> addr | Delete { addr } -> addr

let equal a b =
  match (a, b) with
  | Insert a, Insert b -> a.rule_id = b.rule_id && a.addr = b.addr
  | Delete a, Delete b -> a.addr = b.addr
  | (Insert _ | Delete _), _ -> false

let pp ppf = function
  | Insert { rule_id; addr } -> Format.fprintf ppf "(I,%d,0x%x)" rule_id addr
  | Delete { addr } -> Format.fprintf ppf "(D,0x%x)" addr

let pp_sequence ppf ops =
  Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",") pp
    ppf ops

let length_is_movements ops = max 0 (List.length ops - 1)
