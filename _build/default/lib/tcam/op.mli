(** TCAM operations — the vocabulary of update sequences (§II.D).

    The paper writes [(I, f, A)] for "write entry [f] at physical address
    [A]" and [(D, A)] for "erase address [A]".  An {e update sequence} is an
    op list produced by a scheduler; {!Tcam.apply_sequence} knows how to
    apply one safely. *)

type t =
  | Insert of { rule_id : int; addr : int }
      (** Write the entry at the address.  When the entry already sits at
          another address this is a {e movement} (the old slot is freed). *)
  | Delete of { addr : int }  (** Erase whatever occupies the address. *)

val insert : rule_id:int -> addr:int -> t
val delete : addr:int -> t

val addr : t -> int

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val pp_sequence : Format.formatter -> t list -> unit

val length_is_movements : t list -> int
(** Number of ops in a sequence that move {e existing} entries, i.e. its
    length minus the initial insertion of the new entry (clamped at 0).
    Matches the paper's "number of movements" accounting in Fig. 1. *)
