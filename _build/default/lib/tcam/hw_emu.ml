type t = {
  logical : Tcam.t;
  hw_table_size : int;
  latency : Latency.t;
  (* The physical TCAM image under modulo addressing.  Distinct logical
     entries can collide on a hardware slot; the emulation (like the
     paper's) only cares that a write of the right size happened. *)
  hw_slots : int option array;
  mutable calls : int;
  mutable clock_ms : float;
}

let default_hw_table_size = 256

let create ?(hw_table_size = default_hw_table_size) ?(latency = Latency.default)
    ~logical_size () =
  if hw_table_size <= 0 then invalid_arg "Hw_emu.create: hw_table_size must be positive";
  {
    logical = Tcam.create ~size:logical_size;
    hw_table_size;
    latency;
    hw_slots = Array.make hw_table_size None;
    calls = 0;
    clock_ms = 0.0;
  }

let logical t = t.logical
let hw_size t = t.hw_table_size

let add_entry t ~rule_id ~addr =
  Tcam.write t.logical ~rule_id ~addr;
  t.hw_slots.(addr mod t.hw_table_size) <- Some rule_id;
  t.calls <- t.calls + 1;
  t.clock_ms <- t.clock_ms +. t.latency.Latency.write_ms

let delete_entry t ~addr =
  Tcam.erase t.logical ~addr;
  t.hw_slots.(addr mod t.hw_table_size) <- None;
  t.calls <- t.calls + 1;
  t.clock_ms <- t.clock_ms +. t.latency.Latency.erase_ms

let apply_sequence t ops =
  List.iter
    (function
      | Op.Insert { rule_id; addr } -> add_entry t ~rule_id ~addr
      | Op.Delete { addr } -> delete_entry t ~addr)
    ops

let hw_calls t = t.calls
let elapsed_ms t = t.clock_ms

let reset_meters t =
  t.calls <- 0;
  t.clock_ms <- 0.0
