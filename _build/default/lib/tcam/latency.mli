(** TCAM timing model.

    Hardware TCAM writes are slow and — crucially for the paper's
    methodology — take an (approximately) constant time each, so the "TCAM
    update time" of a sequence is [#ops x per-op latency].  RuleTris and
    FastRule both use 0.6 ms per movement for the large-table emulation;
    that is this model's default.  ONetSwitch's SDK distinguishes
    [ADDENTRY] and [DELETEENTRY], so the model keeps separate write/erase
    costs (equal by default). *)

type t = { write_ms : float; erase_ms : float }

val default : t
(** 0.6 ms per write and per erase. *)

val make : ?write_ms:float -> ?erase_ms:float -> unit -> t
(** Costs must be non-negative.  Defaults to {!default}'s values. *)

val sequence_ms : t -> Op.t list -> float
(** Modelled time to apply the sequence. *)

val ops_ms : t -> writes:int -> erases:int -> float
(** Modelled time for aggregate counts. *)
