(* Canonical position of the i-th entry (by current address order) out of
   [n] under each layout — the same placement rule as Layout.place. *)
let target_position layout ~tcam_size ~n i =
  match layout with
  | Layout.Original -> i
  | Layout.Interleaved k ->
      if k < 1 then invalid_arg "Defrag: K must be >= 1" else i + (i / k)
  | Layout.Separated ->
      let bottom = n / 2 in
      if i < bottom then i else tcam_size - (n - i)

let placements tcam layout =
  let n = Tcam.used_count tcam in
  let tcam_size = Tcam.size tcam in
  if Layout.capacity_needed layout ~n > tcam_size then
    invalid_arg "Defrag: entries do not fit under the target layout";
  let out = ref [] in
  let i = ref 0 in
  Tcam.iter_used tcam (fun ~addr ~rule_id ->
      let target = target_position layout ~tcam_size ~n !i in
      incr i;
      if target <> addr then out := (rule_id, addr, target) :: !out);
  List.rev !out

(* Up-moves top-down, then down-moves bottom-up: with monotone targets this
   never collides and never lets one entry pass another (see .mli). *)
let plan tcam ~layout =
  let moving = placements tcam layout in
  let ups = List.filter (fun (_, cur, tgt) -> tgt > cur) moving in
  let downs = List.filter (fun (_, cur, tgt) -> tgt < cur) moving in
  let up_ops =
    List.rev_map (fun (id, _, tgt) -> Op.insert ~rule_id:id ~addr:tgt) ups
  in
  let down_ops =
    List.map (fun (id, _, tgt) -> Op.insert ~rule_id:id ~addr:tgt) downs
  in
  up_ops @ down_ops

let moves_needed tcam ~layout = List.length (placements tcam layout)

let is_canonical tcam ~layout = moves_needed tcam ~layout = 0
