(** ONetSwitch-style hardware emulation (§VI.1).

    The physical TCAM on ONetSwitch45 holds only [ONS_HW_TABLE_SIZE = 256]
    entries, so the paper emulates large tables by applying each scheduled
    operation at [address mod ONS_HW_TABLE_SIZE] on the real hardware —
    preserving the number and latency of hardware writes while a host-side
    shadow table (our {!Tcam.t}) tracks logical correctness.

    This module reproduces that rig in software: a logical TCAM carries the
    real state, a small "hardware" TCAM receives the modulo-addressed
    writes through [add_entry]/[delete_entry] (the ONetSwitch SDK entry
    points), and the modelled hardware clock advances per call. *)

type t

val default_hw_table_size : int
(** 256, ONetSwitch45's [ONS_HW_TABLE_SIZE]. *)

val create : ?hw_table_size:int -> ?latency:Latency.t -> logical_size:int -> unit -> t

val logical : t -> Tcam.t
(** The shadow table holding ground truth. *)

val hw_size : t -> int

val add_entry : t -> rule_id:int -> addr:int -> unit
(** SDK [ADDENTRY]: logical write at [addr], hardware write at
    [addr mod hw_table_size] (hardware slot contents are overwritten
    blindly, as real modulo emulation does). *)

val delete_entry : t -> addr:int -> unit
(** SDK [DELETEENTRY]. *)

val apply_sequence : t -> Op.t list -> unit
(** Apply a scheduler sequence (already in application order) through the
    SDK calls, like {!Tcam.apply_sequence}. *)

val hw_calls : t -> int
(** Number of SDK calls issued so far. *)

val elapsed_ms : t -> float
(** Modelled hardware time consumed so far. *)

val reset_meters : t -> unit
