lib/tcam/hw_emu.ml: Array Latency List Op Tcam
