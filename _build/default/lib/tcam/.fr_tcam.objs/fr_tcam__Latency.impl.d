lib/tcam/latency.ml: List Op
