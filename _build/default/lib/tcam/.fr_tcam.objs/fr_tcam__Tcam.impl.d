lib/tcam/tcam.ml: Array Format Fr_dag Fr_tern Hashtbl List Op Printf
