lib/tcam/layout.ml: Array Format Printf Tcam
