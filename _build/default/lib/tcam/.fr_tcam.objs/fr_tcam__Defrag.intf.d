lib/tcam/defrag.mli: Layout Op Tcam
