lib/tcam/tcam.mli: Format Fr_dag Fr_tern Op
