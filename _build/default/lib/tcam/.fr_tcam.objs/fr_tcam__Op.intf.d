lib/tcam/op.mli: Format
