lib/tcam/layout.mli: Format Tcam
