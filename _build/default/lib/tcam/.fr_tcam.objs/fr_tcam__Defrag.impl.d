lib/tcam/defrag.ml: Layout List Op Tcam
