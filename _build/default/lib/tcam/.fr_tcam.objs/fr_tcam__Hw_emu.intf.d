lib/tcam/hw_emu.mli: Latency Op Tcam
