lib/tcam/op.ml: Format List
