lib/tcam/latency.mli: Op
