(** The (minimum) flow dependency graph — a dynamic DAG over rule ids.

    Following DESIGN.md §2, a directed edge [u -> v] ("[u] depends on [v]")
    states that [v] must be matched first, i.e. the TCAM must keep
    [phyaddr u < phyaddr v].  Nodes are rule ids (ints); the graph does not
    own rule payloads.

    The structure is mutable: the switch firmware adds a node per inserted
    flow entry and removes a node per deletion.  Acyclicity is the caller's
    obligation (the builders in {!Build} and the update generators maintain
    it); {!Topo.is_acyclic} and {!Topo.would_close_cycle} are provided for
    checking. *)

type t

val create : ?initial_capacity:int -> unit -> t

val add_node : t -> int -> unit
(** Idempotent. *)

val mem_node : t -> int -> bool

val remove_node : ?contract:bool -> t -> int -> unit
(** Removes the node and all incident edges.  With [~contract:true], adds an
    edge [x -> y] for every dependent [x] and dependency [y] of the removed
    node, preserving the transitive ordering that flowed through it.  The
    paper's evaluation deletes without contraction; the option exists for
    semantics-preserving table maintenance.  No-op if absent. *)

val add_edge : t -> int -> int -> unit
(** [add_edge g u v] records [u -> v] ([u] depends on [v]).  Idempotent;
    creates missing endpoints.  Self-edges are rejected.
    @raise Invalid_argument on [u = v]. *)

val remove_edge : t -> int -> int -> unit
(** No-op if absent. *)

val mem_edge : t -> int -> int -> bool

val deps : t -> int -> int list
(** [deps g u] — the nodes [u] depends on (out-neighbours).  Empty for
    unknown nodes. *)

val dependents : t -> int -> int list
(** [dependents g v] — the nodes depending on [v] (in-neighbours). *)

val iter_deps : t -> int -> (int -> unit) -> unit
val iter_dependents : t -> int -> (int -> unit) -> unit
val fold_deps : t -> int -> init:'a -> f:('a -> int -> 'a) -> 'a

val out_degree : t -> int -> int
val in_degree : t -> int -> int

val n_nodes : t -> int
val n_edges : t -> int

val nodes : t -> int list
val iter_nodes : t -> (int -> unit) -> unit

val copy : t -> t
(** Deep copy — mutations of the copy do not affect the original. *)

val pp : Format.formatter -> t -> unit
(** Debug dump: one [u -> {deps}] line per node. *)
