(** Candidate index for match-field overlap queries.

    The policy compiler's cost is dominated by pairwise overlap tests
    (O(n) per inserted rule, O(n^2) for a bulk compile).  Real rule sets
    are strongly clustered by destination prefix, so bucketing rules by
    their destination /20 block (configurable) cuts the candidate set by
    orders of magnitude: two rules can only overlap if their destination
    fields are compatible, and two fields that both care about the top
    [bits] destination bits are compatible there only when the bits
    agree.

    The index returns a {e superset} of the overlapping rules (bucket
    peers plus everything with a coarser destination); callers filter
    with {!Fr_tern.Rule.overlaps}.  Rules whose destination cares about
    fewer than [bits] bits land in the coarse class and are candidates
    for every query; a query whose own destination is coarse scans
    everything (no better than the naive loop, but such rules are rare
    in ACL/FW/routing tables). *)

type t

val create : ?bits:int -> unit -> t
(** [bits] (default 20, max 24) — destination prefix bits to bucket on. *)

val add : t -> Fr_tern.Rule.t -> unit
(** Idempotent per rule id. *)

val remove : t -> Fr_tern.Rule.t -> unit
(** No-op if absent. *)

val length : t -> int

val iter_candidates : t -> Fr_tern.Rule.t -> (Fr_tern.Rule.t -> unit) -> unit
(** Every indexed rule that {e might} overlap the query (including the
    query's own id if indexed — callers filter). *)

val overlapping : t -> Fr_tern.Rule.t -> Fr_tern.Rule.t list
(** Exact: candidates filtered by {!Fr_tern.Rule.overlaps}, excluding the
    query's own id. *)

val candidate_count : t -> Fr_tern.Rule.t -> int
(** Size of the candidate superset (instrumentation). *)
