type t = {
  n : int;
  m : int;
  n_components : int;
  c_max : int;
  c_avg : float;
  d_in : float;
  max_out_degree : int;
  max_in_degree : int;
}

(* Union-find over node ids (hashtable-backed: ids are sparse). *)
module Uf = struct
  type t = { parent : (int, int) Hashtbl.t; rank : (int, int) Hashtbl.t }

  let create () = { parent = Hashtbl.create 64; rank = Hashtbl.create 64 }

  let ensure uf x =
    if not (Hashtbl.mem uf.parent x) then begin
      Hashtbl.replace uf.parent x x;
      Hashtbl.replace uf.rank x 0
    end

  let rec find uf x =
    let p = Hashtbl.find uf.parent x in
    if p = x then x
    else begin
      let r = find uf p in
      Hashtbl.replace uf.parent x r;
      r
    end

  let union uf x y =
    ensure uf x;
    ensure uf y;
    let rx = find uf x and ry = find uf y in
    if rx <> ry then begin
      let kx = Hashtbl.find uf.rank rx and ky = Hashtbl.find uf.rank ry in
      if kx < ky then Hashtbl.replace uf.parent rx ry
      else if kx > ky then Hashtbl.replace uf.parent ry rx
      else begin
        Hashtbl.replace uf.parent ry rx;
        Hashtbl.replace uf.rank rx (kx + 1)
      end
    end
end

let build_uf g =
  let uf = Uf.create () in
  Graph.iter_nodes g (fun u ->
      Uf.ensure uf u;
      Graph.iter_deps g u (fun v -> Uf.union uf u v));
  uf

let components g =
  let uf = build_uf g in
  let groups = Hashtbl.create 64 in
  Graph.iter_nodes g (fun u ->
      let r = Uf.find uf u in
      let cur = Option.value (Hashtbl.find_opt groups r) ~default:[] in
      Hashtbl.replace groups r (u :: cur));
  Hashtbl.fold (fun _ nodes acc -> nodes :: acc) groups []

let compute g =
  let n = Graph.n_nodes g and m = Graph.n_edges g in
  if n = 0 then
    {
      n = 0;
      m = 0;
      n_components = 0;
      c_max = 0;
      c_avg = 0.0;
      d_in = 0.0;
      max_out_degree = 0;
      max_in_degree = 0;
    }
  else begin
    let uf = build_uf g in
    (* Longest chain ending at each node, then fold maxima per component. *)
    let order =
      match Topo.toposort g with
      | Some o -> o
      | None -> invalid_arg "Stats.compute: graph has a cycle"
    in
    let chain = Hashtbl.create n in
    List.iter
      (fun u ->
        let d =
          Graph.fold_deps g u ~init:0 ~f:(fun acc v ->
              max acc (Hashtbl.find chain v))
        in
        Hashtbl.replace chain u (d + 1))
      (List.rev order);
    let comp_diam = Hashtbl.create 64 in
    Graph.iter_nodes g (fun u ->
        let r = Uf.find uf u in
        let cur = Option.value (Hashtbl.find_opt comp_diam r) ~default:0 in
        Hashtbl.replace comp_diam r (max cur (Hashtbl.find chain u)));
    let n_components = Hashtbl.length comp_diam in
    let c_max = Hashtbl.fold (fun _ d acc -> max d acc) comp_diam 0 in
    let c_sum = Hashtbl.fold (fun _ d acc -> acc + d) comp_diam 0 in
    let max_out = ref 0 and max_in = ref 0 in
    Graph.iter_nodes g (fun u ->
        max_out := max !max_out (Graph.out_degree g u);
        max_in := max !max_in (Graph.in_degree g u));
    {
      n;
      m;
      n_components;
      c_max;
      c_avg = float_of_int c_sum /. float_of_int n_components;
      d_in = float_of_int m /. float_of_int n;
      max_out_degree = !max_out;
      max_in_degree = !max_in;
    }
  end

let pp ppf t =
  Format.fprintf ppf
    "n=%d m=%d components=%d c_max=%d c_avg=%.2f d_in=%.3f max_out=%d max_in=%d"
    t.n t.m t.n_components t.c_max t.c_avg t.d_in t.max_out_degree
    t.max_in_degree

let pp_table_row ppf t =
  Format.fprintf ppf "%8d %6d %6.1f" t.n t.c_max t.c_avg
