(** Topological utilities over the dependency graph.

    Used by the builders (acyclicity assertions), the update generators
    (picking constraint pairs that cannot close a cycle) and the test suite
    (validating that every generated graph really is a DAG). *)

val toposort : Graph.t -> int list option
(** Kahn's algorithm.  [Some order] lists nodes such that every node appears
    before all nodes it depends on (i.e. dependencies come later — the
    "must sit at a higher TCAM address" side appears later in the list);
    [None] if the graph has a cycle. *)

val is_acyclic : Graph.t -> bool

val reachable : Graph.t -> int -> int -> bool
(** [reachable g u v] — is there a directed path [u ->* v] (following
    dependency edges)?  [reachable g u u] is [true]. *)

val would_close_cycle : Graph.t -> int -> int -> bool
(** [would_close_cycle g u v] — would adding [u -> v] create a cycle?
    Equivalent to [reachable g v u] for distinct nodes. *)

val descendants : Graph.t -> int -> Fr_tern.Rule.Id_set.t
(** All nodes reachable from [u] via dependency edges, excluding [u]. *)

val ancestors : Graph.t -> int -> Fr_tern.Rule.Id_set.t
(** All nodes that (transitively) depend on [u], excluding [u]. *)

val longest_path_nodes : Graph.t -> int
(** Number of nodes on the longest directed path in the whole graph (>= 1
    when the graph is non-empty, 0 when empty).  This is the paper's
    "diameter" measured in nodes, the quantity bounding update-sequence
    length.
    @raise Invalid_argument if the graph has a cycle. *)
