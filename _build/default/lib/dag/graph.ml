module Id_set = Fr_tern.Rule.Id_set

type node = { mutable deps : Id_set.t; mutable rdeps : Id_set.t }

type t = { tbl : (int, node) Hashtbl.t; mutable edges : int }

let create ?(initial_capacity = 64) () =
  { tbl = Hashtbl.create initial_capacity; edges = 0 }

let mem_node g u = Hashtbl.mem g.tbl u

let add_node g u =
  if not (mem_node g u) then
    Hashtbl.replace g.tbl u { deps = Id_set.empty; rdeps = Id_set.empty }

let find g u = Hashtbl.find_opt g.tbl u

let mem_edge g u v =
  match find g u with None -> false | Some n -> Id_set.mem v n.deps

let add_edge g u v =
  if u = v then invalid_arg "Graph.add_edge: self-edge";
  add_node g u;
  add_node g v;
  let nu = Hashtbl.find g.tbl u and nv = Hashtbl.find g.tbl v in
  if not (Id_set.mem v nu.deps) then begin
    nu.deps <- Id_set.add v nu.deps;
    nv.rdeps <- Id_set.add u nv.rdeps;
    g.edges <- g.edges + 1
  end

let remove_edge g u v =
  match (find g u, find g v) with
  | Some nu, Some nv when Id_set.mem v nu.deps ->
      nu.deps <- Id_set.remove v nu.deps;
      nv.rdeps <- Id_set.remove u nv.rdeps;
      g.edges <- g.edges - 1
  | _ -> ()

let remove_node ?(contract = false) g u =
  match find g u with
  | None -> ()
  | Some n ->
      if contract then
        Id_set.iter
          (fun x -> Id_set.iter (fun y -> if x <> y then add_edge g x y) n.deps)
          n.rdeps;
      (* Re-fetch: contraction may have added edges touching u's neighbours
         but never u itself, so u's own sets are still n's. *)
      Id_set.iter
        (fun v ->
          let nv = Hashtbl.find g.tbl v in
          nv.rdeps <- Id_set.remove u nv.rdeps;
          g.edges <- g.edges - 1)
        n.deps;
      Id_set.iter
        (fun x ->
          let nx = Hashtbl.find g.tbl x in
          nx.deps <- Id_set.remove u nx.deps;
          g.edges <- g.edges - 1)
        n.rdeps;
      Hashtbl.remove g.tbl u

let deps g u = match find g u with None -> [] | Some n -> Id_set.elements n.deps

let dependents g v =
  match find g v with None -> [] | Some n -> Id_set.elements n.rdeps

let iter_deps g u f =
  match find g u with None -> () | Some n -> Id_set.iter f n.deps

let iter_dependents g v f =
  match find g v with None -> () | Some n -> Id_set.iter f n.rdeps

let fold_deps g u ~init ~f =
  match find g u with
  | None -> init
  | Some n -> Id_set.fold (fun v acc -> f acc v) n.deps init

let out_degree g u = match find g u with None -> 0 | Some n -> Id_set.cardinal n.deps
let in_degree g v = match find g v with None -> 0 | Some n -> Id_set.cardinal n.rdeps

let n_nodes g = Hashtbl.length g.tbl
let n_edges g = g.edges

let nodes g = Hashtbl.fold (fun u _ acc -> u :: acc) g.tbl []
let iter_nodes g f = Hashtbl.iter (fun u _ -> f u) g.tbl

let copy g =
  let tbl = Hashtbl.create (max 64 (Hashtbl.length g.tbl)) in
  Hashtbl.iter
    (fun u n -> Hashtbl.replace tbl u { deps = n.deps; rdeps = n.rdeps })
    g.tbl;
  { tbl; edges = g.edges }

let pp ppf g =
  let ns = List.sort Int.compare (nodes g) in
  List.iter
    (fun u ->
      Format.fprintf ppf "%d -> {%a}@." u
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           Format.pp_print_int)
        (deps g u))
    ns
