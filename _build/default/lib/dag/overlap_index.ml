module Rule = Fr_tern.Rule
module Ternary = Fr_tern.Ternary

(* The destination field of the packed 5-tuple occupies bit positions
   40..71 (see Fr_tern.Header); its top [bits] positions are 71 downto
   72 - bits.  Rules that are not 104-bit 5-tuples, or whose destination
   is coarser than [bits], fall into the coarse class. *)
let dst_msb = 71

type t = {
  bits : int;
  buckets : (int, (int, Rule.t) Hashtbl.t) Hashtbl.t;
  coarse : (int, Rule.t) Hashtbl.t;
  all : (int, Rule.t) Hashtbl.t;
}

let create ?(bits = 20) () =
  if bits < 1 || bits > 24 then invalid_arg "Overlap_index.create: bits out of [1,24]";
  {
    bits;
    buckets = Hashtbl.create 256;
    coarse = Hashtbl.create 64;
    all = Hashtbl.create 256;
  }

let key_of t (r : Rule.t) =
  if Ternary.width r.Rule.field <> Fr_tern.Header.total_width then None
  else begin
    let rec go i acc =
      if i <= dst_msb - t.bits then Some acc
      else
        match Ternary.get r.Rule.field i with
        | Ternary.Any -> None
        | Ternary.Zero -> go (i - 1) (2 * acc)
        | Ternary.One -> go (i - 1) ((2 * acc) + 1)
    in
    go dst_msb 0
  end

let bucket_for t k =
  match Hashtbl.find_opt t.buckets k with
  | Some b -> b
  | None ->
      let b = Hashtbl.create 8 in
      Hashtbl.replace t.buckets k b;
      b

let add t r =
  Hashtbl.replace t.all r.Rule.id r;
  match key_of t r with
  | Some k -> Hashtbl.replace (bucket_for t k) r.Rule.id r
  | None -> Hashtbl.replace t.coarse r.Rule.id r

let remove t r =
  Hashtbl.remove t.all r.Rule.id;
  (match key_of t r with
  | Some k -> (
      match Hashtbl.find_opt t.buckets k with
      | Some b -> Hashtbl.remove b r.Rule.id
      | None -> ())
  | None -> Hashtbl.remove t.coarse r.Rule.id)

let length t = Hashtbl.length t.all

let iter_candidates t q f =
  match key_of t q with
  | Some k ->
      (match Hashtbl.find_opt t.buckets k with
      | Some b -> Hashtbl.iter (fun _ r -> f r) b
      | None -> ());
      Hashtbl.iter (fun _ r -> f r) t.coarse
  | None -> Hashtbl.iter (fun _ r -> f r) t.all

let overlapping t q =
  let acc = ref [] in
  iter_candidates t q (fun r ->
      if r.Rule.id <> q.Rule.id && Rule.overlaps q r then acc := r :: !acc);
  !acc

let candidate_count t q =
  let n = ref 0 in
  iter_candidates t q (fun _ -> incr n);
  !n
