(** Priority assignment from a dependency graph.

    Commodity OpenFlow switches take an integer priority per entry (§II.B);
    a controller that reasons in dependency graphs must eventually
    linearise them.  [assign] gives each node its {e depth}: 1 plus the
    longest chain of dependents below it, so that every edge [u -> v]
    satisfies [priority u < priority v] with the smallest possible number
    of distinct priority values (the DAG's height).  Fewer distinct values
    means fewer forced orderings in the TCAM and fewer movements for the
    priority-based firmware — the quantity CacheFlow-style systems
    minimise. *)

val assign : Graph.t -> (int, int) Hashtbl.t
(** Depth of every node, in [1 .. height].
    @raise Invalid_argument on a cyclic graph. *)

val height : Graph.t -> int
(** The number of distinct priorities needed = longest path in nodes. *)

val is_valid : Graph.t -> (int -> int) -> bool
(** [is_valid g prio] — does [prio] respect every edge ([u -> v] implies
    [prio u < prio v])?  Test oracle. *)
