lib/dag/topo.mli: Fr_tern Graph
