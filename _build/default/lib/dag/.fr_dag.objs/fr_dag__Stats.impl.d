lib/dag/stats.ml: Format Graph Hashtbl List Option Topo
