lib/dag/graph.ml: Format Fr_tern Hashtbl Int List
