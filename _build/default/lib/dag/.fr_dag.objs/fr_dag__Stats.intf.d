lib/dag/stats.mli: Format Graph
