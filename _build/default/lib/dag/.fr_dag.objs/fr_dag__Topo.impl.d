lib/dag/topo.ml: Fr_tern Graph Hashtbl List Option Queue Stack
