lib/dag/overlap_index.mli: Fr_tern
