lib/dag/levels.ml: Graph Hashtbl List Topo
