lib/dag/overlap_index.ml: Fr_tern Hashtbl
