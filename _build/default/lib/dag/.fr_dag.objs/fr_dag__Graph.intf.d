lib/dag/graph.mli: Format
