lib/dag/build.ml: Array Fr_tern Graph Int64 List Overlap_index Stack Topo
