lib/dag/build.mli: Fr_tern Graph
