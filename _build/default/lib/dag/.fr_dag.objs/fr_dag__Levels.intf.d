lib/dag/levels.mli: Graph Hashtbl
