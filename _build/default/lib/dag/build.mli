(** The policy compiler: rules -> minimum dependency graph (stage 1 of the
    FastRule pipeline, §III).

    A rule [a] must sit below rule [b] (edge [a -> b]) when their match
    fields overlap and [b] has the higher policy priority — otherwise a
    packet in the intersection would be answered by the wrong entry.  The
    {e minimum} graph keeps only edges not implied transitively: an edge
    [a -> b] is dropped when some other overlapping rule [c] already forces
    [a -> c ->* b], because address order is transitive.  The transitive
    closure of the produced graph therefore covers every overlapping pair,
    which is the correctness contract the schedulers rely on.

    Overlapping rules with {e equal} priority have no semantically forced
    order; we orient them deterministically by id (larger id depends on
    smaller) so compilation is a function of the rule set. *)

val compile : Fr_tern.Rule.t array -> Graph.t
(** Full-table compilation, O(n^2) pairwise overlap tests plus reachability
    filtering (cheap in practice because dependency chains are short).
    Every rule id becomes a node even if isolated. *)

val compile_fast : Fr_tern.Rule.t array -> Graph.t
(** Identical result to {!compile} (the test suite asserts edge-for-edge
    equality), with overlap candidates narrowed through
    {!Overlap_index} — near-linear on destination-clustered tables. *)

val dependencies_of :
  Graph.t -> existing:Fr_tern.Rule.t list -> Fr_tern.Rule.t -> int list * int list
(** [dependencies_of g ~existing r] computes what inserting [r] into the
    compiled table would add: [(deps, dependents)] where [deps] are the
    minimal higher-precedence overlapping rules ([r] -> each) and
    [dependents] the maximal lower-precedence overlapping rules (each -> [r]).
    [g] must be the graph compiled from [existing]; it is not modified. *)

val insert : Graph.t -> existing:Fr_tern.Rule.t list -> Fr_tern.Rule.t -> unit
(** Incrementally add [r]'s node and the edges from {!dependencies_of}. *)

val remove : ?contract:bool -> Graph.t -> int -> unit
(** Remove a rule's node (see {!Graph.remove_node}). *)

val closure_covers_overlaps : Graph.t -> Fr_tern.Rule.t array -> bool
(** Test oracle: does the transitive closure of [g] order every overlapping
    pair of distinct-precedence rules correctly?  Used by the test suite to
    validate {!compile}. *)
