module Id_set = Fr_tern.Rule.Id_set

let toposort g =
  let indeg = Hashtbl.create (max 16 (Graph.n_nodes g)) in
  Graph.iter_nodes g (fun u -> Hashtbl.replace indeg u (Graph.in_degree g u));
  let queue = Queue.create () in
  Graph.iter_nodes g (fun u -> if Graph.in_degree g u = 0 then Queue.add u queue);
  let order = ref [] in
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    incr seen;
    order := u :: !order;
    Graph.iter_deps g u (fun v ->
        let d = Hashtbl.find indeg v - 1 in
        Hashtbl.replace indeg v d;
        if d = 0 then Queue.add v queue)
  done;
  if !seen = Graph.n_nodes g then Some (List.rev !order) else None

let is_acyclic g = Option.is_some (toposort g)

let reachable g u v =
  if u = v then true
  else begin
    let visited = Hashtbl.create 16 in
    let stack = Stack.create () in
    Stack.push u stack;
    Hashtbl.replace visited u ();
    let found = ref false in
    while (not !found) && not (Stack.is_empty stack) do
      let x = Stack.pop stack in
      Graph.iter_deps g x (fun y ->
          if y = v then found := true
          else if not (Hashtbl.mem visited y) then begin
            Hashtbl.replace visited y ();
            Stack.push y stack
          end)
    done;
    !found
  end

let would_close_cycle g u v = u = v || reachable g v u

let traverse step g u =
  let visited = ref Id_set.empty in
  let stack = Stack.create () in
  Stack.push u stack;
  while not (Stack.is_empty stack) do
    let x = Stack.pop stack in
    step g x (fun y ->
        if not (Id_set.mem y !visited) && y <> u then begin
          visited := Id_set.add y !visited;
          Stack.push y stack
        end)
  done;
  !visited

let descendants g u = traverse Graph.iter_deps g u
let ancestors g u = traverse Graph.iter_dependents g u

let longest_path_nodes g =
  match toposort g with
  | None -> invalid_arg "Topo.longest_path_nodes: graph has a cycle"
  | Some order ->
      (* Nodes appear before their dependencies, so scanning the order in
         REVERSE sees each node after everything it depends on. *)
      let best = Hashtbl.create (max 16 (Graph.n_nodes g)) in
      let overall = ref 0 in
      List.iter
        (fun u ->
          let d =
            Graph.fold_deps g u ~init:0 ~f:(fun acc v ->
                max acc (Hashtbl.find best v))
          in
          let d = d + 1 in
          Hashtbl.replace best u d;
          if d > !overall then overall := d)
        (List.rev order);
      !overall
