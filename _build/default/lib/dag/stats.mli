(** Structural statistics of a dependency graph — Table II of the paper.

    The paper characterises each flow table by [n] (entries), [m] (edges),
    [c_max] / [c_avg] (largest / average "diameter" of the sub-graphs, i.e.
    the longest dependency chain of each weakly-connected component, counted
    in nodes) and [d_in] (average in-degree, observed to be < 1 on all real
    data sets).  These quantities drive FastRule's complexity analysis. *)

type t = {
  n : int;  (** number of nodes (flow entries) *)
  m : int;  (** number of edges (dependency requirements) *)
  n_components : int;  (** weakly-connected components *)
  c_max : int;  (** largest component diameter, in nodes *)
  c_avg : float;  (** average component diameter, in nodes *)
  d_in : float;  (** average in-degree over all nodes *)
  max_out_degree : int;
  max_in_degree : int;
}

val compute : Graph.t -> t
(** Full scan.  Components are found with union-find over undirected
    adjacency; each component's diameter is the longest path restricted to
    it (computed in one global longest-path pass).
    @raise Invalid_argument if the graph has a cycle. *)

val components : Graph.t -> int list list
(** Weakly-connected components, each as a node list (unspecified order). *)

val pp : Format.formatter -> t -> unit
(** One-line human-readable summary. *)

val pp_table_row : Format.formatter -> t -> unit
(** "n c_max c_avg" triple in Table II style. *)
