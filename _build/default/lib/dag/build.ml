module Rule = Fr_tern.Rule
module Id_set = Rule.Id_set

(* Deterministic precedence: priority first, then id (smaller id wins ties).
   "a beats b" = a is matched first = a must sit at the higher address. *)
let beats (a : Rule.t) (b : Rule.t) =
  a.priority > b.priority || (a.priority = b.priority && a.id < b.id)

(* Of the candidate dependency targets [s] (all of which must end up above
   the new rule), keep only those not already forced transitively: drop any
   candidate reachable from another candidate via dependency edges. *)
let minimal_targets g s =
  let covered = ref Id_set.empty in
  let mark_descendants j =
    let stack = Stack.create () in
    Graph.iter_deps g j (fun v -> Stack.push v stack);
    while not (Stack.is_empty stack) do
      let x = Stack.pop stack in
      if not (Id_set.mem x !covered) then begin
        covered := Id_set.add x !covered;
        Graph.iter_deps g x (fun v -> Stack.push v stack)
      end
    done
  in
  Id_set.iter mark_descendants s;
  Id_set.diff s !covered

(* Mirror image for dependents (nodes forced below the new rule): drop any
   candidate that can reach another candidate. *)
let maximal_sources g s =
  let covered = ref Id_set.empty in
  let mark_ancestors j =
    let stack = Stack.create () in
    Graph.iter_dependents g j (fun v -> Stack.push v stack);
    while not (Stack.is_empty stack) do
      let x = Stack.pop stack in
      if not (Id_set.mem x !covered) then begin
        covered := Id_set.add x !covered;
        Graph.iter_dependents g x (fun v -> Stack.push v stack)
      end
    done
  in
  Id_set.iter mark_ancestors s;
  Id_set.diff s !covered

let compile rules =
  let n = Array.length rules in
  let order = Array.init n (fun i -> i) in
  (* Highest precedence first. *)
  Array.sort
    (fun i j -> if beats rules.(i) rules.(j) then -1 else if beats rules.(j) rules.(i) then 1 else 0)
    order;
  let g = Graph.create ~initial_capacity:(2 * n) () in
  Array.iter (fun i -> Graph.add_node g rules.(i).Rule.id) order;
  (* The pairwise overlap test runs n^2/2 times; work on the raw chunk
     vectors (hoisted per rule, iterated with unsafe accesses) instead of
     going through Ternary.overlaps per pair. *)
  let values = Array.make n [||] and masks = Array.make n [||] in
  Array.iteri
    (fun pos i ->
      let v, m = Fr_tern.Ternary.unsafe_chunks rules.(i).Rule.field in
      values.(pos) <- v;
      masks.(pos) <- m)
    order;
  let nchunks = if n = 0 then 0 else Array.length values.(0) in
  let overlaps_at a b =
    let va = Array.unsafe_get values a and ma = Array.unsafe_get masks a in
    let vb = Array.unsafe_get values b and mb = Array.unsafe_get masks b in
    let rec go k =
      k >= nchunks
      || Int64.logand
           (Int64.logand (Array.unsafe_get ma k) (Array.unsafe_get mb k))
           (Int64.logxor (Array.unsafe_get va k) (Array.unsafe_get vb k))
         = 0L
         && go (k + 1)
    in
    go 0
  in
  for pos = 1 to n - 1 do
    let r = rules.(order.(pos)) in
    let candidates = ref Id_set.empty in
    for above = 0 to pos - 1 do
      if overlaps_at pos above then
        candidates := Id_set.add rules.(order.(above)).Rule.id !candidates
    done;
    Id_set.iter
      (fun j -> Graph.add_edge g r.Rule.id j)
      (minimal_targets g !candidates)
  done;
  g

let compile_fast rules =
  let n = Array.length rules in
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun i j -> if beats rules.(i) rules.(j) then -1 else if beats rules.(j) rules.(i) then 1 else 0)
    order;
  let g = Graph.create ~initial_capacity:(2 * n) () in
  Array.iter (fun i -> Graph.add_node g rules.(i).Rule.id) order;
  let index = Overlap_index.create () in
  Array.iter
    (fun i ->
      let r = rules.(i) in
      (* Everything indexed so far has higher precedence. *)
      let candidates =
        List.fold_left
          (fun acc (s : Rule.t) -> Id_set.add s.Rule.id acc)
          Id_set.empty
          (Overlap_index.overlapping index r)
      in
      Id_set.iter (fun j -> Graph.add_edge g r.Rule.id j) (minimal_targets g candidates);
      Overlap_index.add index r)
    order;
  g

let dependencies_of g ~existing (r : Rule.t) =
  let ups = ref Id_set.empty and downs = ref Id_set.empty in
  List.iter
    (fun (s : Rule.t) ->
      if s.id <> r.id && Rule.overlaps r s then
        if beats s r then ups := Id_set.add s.id !ups
        else downs := Id_set.add s.id !downs)
    existing;
  (Id_set.elements (minimal_targets g !ups), Id_set.elements (maximal_sources g !downs))

let insert g ~existing r =
  let deps, dependents = dependencies_of g ~existing r in
  Graph.add_node g r.Rule.id;
  List.iter (fun j -> Graph.add_edge g r.Rule.id j) deps;
  List.iter (fun x -> Graph.add_edge g x r.Rule.id) dependents

let remove ?contract g id = Graph.remove_node ?contract g id

let closure_covers_overlaps g rules =
  let n = Array.length rules in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        let a = rules.(i) and b = rules.(j) in
        (* a below b required? then a ->* b must hold. *)
        if Rule.overlaps a b && beats b a && not (Topo.reachable g a.Rule.id b.Rule.id)
        then ok := false
      end
    done
  done;
  !ok
