let assign g =
  match Topo.toposort g with
  | None -> invalid_arg "Levels.assign: graph has a cycle"
  | Some order ->
      let depth = Hashtbl.create (max 16 (Graph.n_nodes g)) in
      (* The toposort lists dependents before their dependencies, so a
         forward scan sees every node after all nodes that depend on it. *)
      List.iter
        (fun u ->
          let d =
            List.fold_left
              (fun acc x -> max acc (Hashtbl.find depth x))
              0 (Graph.dependents g u)
          in
          Hashtbl.replace depth u (d + 1))
        order;
      depth

let height g = Topo.longest_path_nodes g

let is_valid g prio =
  let ok = ref true in
  Graph.iter_nodes g (fun u ->
      Graph.iter_deps g u (fun v -> if prio u >= prio v then ok := false));
  !ok
