(** Named data sets — the five flow-table types of Table II.

    A {!table} bundles everything an experiment run needs: the rules, the
    compiled minimum dependency graph, and the bottom-to-top placement
    order (ascending precedence, so every entry sits below everything it
    depends on no matter the layout). *)

type kind =
  | ACL4
  | ACL5
  | FW4
  | FW5
  | ROUTE
  | IPC1  (** extended: ClassBench's third family, not in the paper *)

val all : kind list
(** The paper's five types (IPC1 excluded). *)

val extended : kind list
(** [all] plus the extended workloads. *)

val to_string : kind -> string
val of_string : string -> kind option

val generate : kind -> seed:int -> n:int -> Fr_tern.Rule.t array
(** Rule ids are [0 .. n-1]. *)

type table = {
  kind : kind;
  rules : Fr_tern.Rule.t array;
  graph : Fr_dag.Graph.t;  (** compiled minimum dependency graph *)
  order : int array;  (** rule ids in ascending precedence (bottom first) *)
}

val build_table : kind -> seed:int -> n:int -> table
(** Generate + compile ({!Fr_dag.Build.compile_fast}) + order.  Building
    the 40k tables takes a few seconds; experiment drivers additionally
    cache the result per (kind, n, seed). *)

val precedence_order : Fr_tern.Rule.t array -> int array
(** Ids sorted by ascending precedence: priority ascending, ties by id
    descending (the mirror of the compiler's "beats" order). *)

val stats : table -> Fr_dag.Stats.t
(** Table II row for this table. *)
