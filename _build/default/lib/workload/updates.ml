module Graph = Fr_dag.Graph
module Topo = Fr_dag.Topo
module Tcam = Fr_tcam.Tcam
module Rng = Fr_prng.Rng

type t = Insert of { id : int; anchor : (int * int) option } | Delete of { id : int }

let pp ppf = function
  | Insert { id; anchor = Some (x, y) } ->
      Format.fprintf ppf "insert %d between {%d,%d}" id x y
  | Insert { id; anchor = None } -> Format.fprintf ppf "insert %d (unconstrained)" id
  | Delete { id } -> Format.fprintf ppf "delete %d" id

let generate rng ~live ~count ~with_deletes ~id_base =
  (* Live entries with O(1) random pick and swap-removal. *)
  let cap = List.length live + count + 1 in
  let pool = Array.make cap 0 in
  let pos = Hashtbl.create cap in
  let n_live = ref 0 in
  let add_live id =
    pool.(!n_live) <- id;
    Hashtbl.replace pos id !n_live;
    incr n_live
  in
  let remove_live id =
    match Hashtbl.find_opt pos id with
    | None -> ()
    | Some i ->
        let last = pool.(!n_live - 1) in
        pool.(i) <- last;
        Hashtbl.replace pos last i;
        Hashtbl.remove pos id;
        decr n_live
  in
  List.iter add_live live;
  let next_id = ref id_base in
  let make_insert () =
    let id = !next_id in
    incr next_id;
    let anchor =
      if !n_live < 2 then None
      else begin
        let x = pool.(Rng.int rng !n_live) in
        let rec draw () =
          let y = pool.(Rng.int rng !n_live) in
          if y = x then draw () else y
        in
        Some (x, draw ())
      end
    in
    add_live id;
    Insert { id; anchor }
  in
  let make_delete () =
    let id = pool.(Rng.int rng !n_live) in
    remove_live id;
    Delete { id }
  in
  let updates = ref [] in
  for k = 1 to count do
    let u =
      if with_deletes && k mod 2 = 0 && !n_live > 0 then make_delete ()
      else make_insert ()
    in
    updates := u :: !updates
  done;
  List.rev !updates

type resolved =
  | R_insert of { id : int; deps : int list; dependents : int list }
  | R_delete of { id : int }

let resolve graph tcam = function
  | Delete { id } -> R_delete { id }
  | Insert { id; anchor = None } -> R_insert { id; deps = []; dependents = [] }
  | Insert { id; anchor = Some (x, y) } ->
      let addr_exn who =
        match Tcam.addr_of tcam who with
        | Some a -> a
        | None ->
            invalid_arg (Printf.sprintf "Updates.resolve: anchor %d is not live" who)
      in
      let f_a, f_b =
        if Topo.reachable graph x y then (x, y)
        else if Topo.reachable graph y x then (y, x)
        else if addr_exn x < addr_exn y then (x, y)
        else (y, x)
      in
      R_insert { id; deps = [ f_b ]; dependents = [ f_a ] }

let apply_graph ?(contract = false) g = function
  | R_insert { id; deps; dependents } ->
      Graph.add_node g id;
      List.iter (fun v -> Graph.add_edge g id v) deps;
      List.iter (fun u -> Graph.add_edge g u id) dependents
  | R_delete { id } -> Graph.remove_node ~contract g id
