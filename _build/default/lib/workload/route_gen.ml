module Rng = Fr_prng.Rng
module Ternary = Fr_tern.Ternary
module Header = Fr_tern.Header
module Rule = Fr_tern.Rule

let plen_distribution =
  [|
    (0.005, 8);
    (0.02, 12);
    (0.10, 16);
    (0.16, 20);
    (0.13, 22);
    (0.48, 24);
    (0.06, 28);
    (0.045, 32);
  |]

let mask32 = 0xFFFFFFFFL

let canonical ~plen v =
  if plen = 0 then 0L
  else Int64.logand v (Int64.logand (Int64.shift_left (-1L) (32 - plen)) mask32)

let field_of_prefix ~plen v =
  Header.pack
    {
      Header.src_ip = Ternary.any 32;
      dst_ip = Ternary.prefix_of_int64 ~width:32 ~plen v;
      src_port = Ternary.any 16;
      dst_port = Ternary.any 16;
      proto = Ternary.any 8;
    }

let generate ?(refine_prob = 0.33) rng ~n ~id_base =
  (* The /16 cluster pool scales with n so prefix density — and therefore
     the nesting rate that drives c_avg — stays roughly constant from 250
     to 40k entries. *)
  let pool16 =
    Array.init (max 64 (n / 6)) (fun _ ->
        (Rng.int rng 224 lsl 8) lor Rng.int rng 256)
  in
  let seen = Hashtbl.create (2 * n) in
  (* Accepted prefixes, in acceptance order. *)
  let plens = Array.make n 0 and values = Array.make n 0L in
  let count = ref 0 in
  (* Prefixes short enough to refine, as an index into the above. *)
  let refinable = Array.make n 0 in
  let n_refinable = ref 0 in
  let add ~plen v =
    let v = canonical ~plen v in
    if !count >= n || Hashtbl.mem seen (plen, v) then false
    else begin
      Hashtbl.replace seen (plen, v) ();
      plens.(!count) <- plen;
      values.(!count) <- v;
      (* Only moderately specific prefixes may be refined further —
         unbounded re-refinement compounds chain depth as n grows. *)
      if plen >= 16 && plen <= 22 then begin
        refinable.(!n_refinable) <- !count;
        incr n_refinable
      end;
      incr count;
      true
    end
  in
  let fresh () =
    let c16 = pool16.(Rng.int rng (Array.length pool16)) in
    let plen = Rng.weighted rng plen_distribution in
    let v =
      Int64.logor
        (Int64.shift_left (Int64.of_int c16) 16)
        (Int64.logand (Rng.bits64 rng) 0xFFFFL)
    in
    add ~plen v
  in
  let refine () =
    if !n_refinable = 0 then fresh ()
    else begin
      let i = refinable.(Rng.int rng !n_refinable) in
      let plen = plens.(i) and v = values.(i) in
      let plen' = min 32 (plen + 1 + Rng.int rng 8) in
      let low_mask =
        Int64.logand mask32 (Int64.lognot (Int64.shift_left (-1L) (32 - plen)))
      in
      add ~plen:plen' (Int64.logor v (Int64.logand (Rng.bits64 rng) low_mask))
    end
  in
  let attempts = ref 0 in
  while !count < n && !attempts < 100 * n do
    incr attempts;
    ignore (if Rng.chance rng refine_prob then refine () else fresh ())
  done;
  (* Top up deterministically if random draws kept colliding. *)
  let filler = ref 0 in
  while !count < n do
    incr filler;
    ignore (add ~plen:32 (Int64.shift_left (Int64.of_int !filler) 2))
  done;
  Array.init n (fun i ->
      Rule.make ~id:(id_base + i)
        ~field:(field_of_prefix ~plen:plens.(i) values.(i))
        ~action:(Rule.Forward (Rng.int rng 64))
        ~priority:plens.(i))
