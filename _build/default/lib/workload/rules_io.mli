(** Plain-text serialisation of rule tables.

    A portable, diff-friendly format in the spirit of ClassBench rule
    files, so generated tables can be saved, shared and reloaded (and so
    experiments can run against a pinned table rather than a seed):

    {v
    # fastrule-table v1
    # id priority action field(msb..lsb)
    0 92 fwd:3 10100101...****
    1 15 drop  ****...
    v}

    Fields are the packed ternary strings ({!Fr_tern.Ternary.to_string});
    actions are [fwd:<port>], [drop] or [ctrl].  Blank lines and [#]
    comments are ignored on input. *)

val to_string : Fr_tern.Rule.t array -> string
val of_string : string -> (Fr_tern.Rule.t array, string) result
(** [Error] pinpoints the first malformed line (1-based). *)

val save : string -> Fr_tern.Rule.t array -> unit
(** [save path rules] — writes atomically-ish (temp file + rename). *)

val load : string -> (Fr_tern.Rule.t array, string) result

val action_to_string : Fr_tern.Rule.action -> string
val action_of_string : string -> Fr_tern.Rule.action option
