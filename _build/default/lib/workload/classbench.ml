module Rng = Fr_prng.Rng
module Ternary = Fr_tern.Ternary
module Header = Fr_tern.Header
module Rule = Fr_tern.Rule

let priority_of_field field = Ternary.width field - Ternary.num_wildcards field

let mask32 = 0xFFFFFFFFL

(* A 32-bit prefix as a ternary string. *)
let prefix32 ~plen v = Ternary.prefix_of_int64 ~width:32 ~plen (Int64.logand v mask32)

let random_port rng = Ternary.exact_of_int64 ~width:16 (Int64.of_int (Rng.int rng 65536))

let protos = [| 6; 17; 1 |]

(* The per-family fields that every member shares; refinements only narrow
   the destination prefix, so family members nest by construction. *)
type family_base = {
  src : Ternary.t;
  sport : Ternary.t;
  dport : Ternary.t;
  proto : Ternary.t;
}

let family_base profile rng =
  let wild_ports = Rng.chance rng profile.Profile.port_wildcard_prob in
  {
    src = Ternary.exact_of_int64 ~width:32 (Int64.logand (Rng.bits64 rng) mask32);
    sport = (if wild_ports then Ternary.any 16 else random_port rng);
    dport = (if wild_ports then Ternary.any 16 else random_port rng);
    proto =
      (if Rng.chance rng profile.Profile.proto_wildcard_prob then Ternary.any 8
       else Ternary.exact_of_int64 ~width:8 (Int64.of_int (Rng.pick rng protos)));
  }

let pack_with base dst =
  Header.pack
    {
      Header.src_ip = base.src;
      dst_ip = dst;
      src_port = base.sport;
      dst_port = base.dport;
      proto = base.proto;
    }

let make_rule rng ~id field =
  Rule.make ~id ~field
    ~action:(Rule.Forward (Rng.int rng 16))
    ~priority:(priority_of_field field)

(* log2 of a power of two (broad_span), defensive floor otherwise. *)
let log2_floor x =
  let rec go acc x = if x <= 1 then acc else go (acc + 1) (x lsr 1) in
  go 0 x

let generate profile rng ~n ~id_base =
  let rules = ref [] in
  let count = ref 0 in
  let next_id () =
    let id = id_base + !count in
    incr count;
    id
  in
  let emit field = rules := make_rule rng ~id:(next_id ()) field :: !rules in
  let fc = ref 0 in
  (* Each family owns the destination /20 block whose top 20 bits equal its
     index, so distinct families can never overlap. *)
  let block_value f = Int64.shift_left (Int64.of_int f) 12 in
  let since_broad = ref 0 in
  let emit_broad () =
    (* A low-priority rule spanning [broad_span] consecutive family blocks
       that already exist. *)
    let span = max 1 profile.Profile.broad_span in
    let plen = 20 - log2_floor span in
    let groups = max 1 (!fc / span) in
    let g = Rng.int rng groups in
    let dst =
      prefix32 ~plen (Int64.shift_left (Int64.of_int (g * span)) 12)
    in
    let field =
      Header.pack
        {
          Header.src_ip = Ternary.any 32;
          dst_ip = dst;
          src_port = Ternary.any 16;
          dst_port = Ternary.any 16;
          proto = Ternary.exact_of_int64 ~width:8 (Int64.of_int (Rng.pick rng protos));
        }
    in
    emit field
  in
  let emit_chain base depth =
    (* Prefix-length step sized so even deep chains fit in the 12 spare
       destination bits without producing duplicate members. *)
    let step = max 1 (min 3 (12 / max 1 (depth - 1))) in
    let rec go i ~plen ~value =
      if i < depth && !count < n then begin
        emit (pack_with base (prefix32 ~plen value));
        if i + 1 < depth then begin
          let plen' = min 32 (plen + step) in
          (* Extend the prefix with random bits in the newly cared
             positions, keeping the parent's bits intact so the refinement
             nests. *)
          let fresh = Int64.logand (Rng.bits64 rng) mask32 in
          let keep_mask = Int64.shift_left (-1L) (32 - plen) in
          let new_mask =
            Int64.logand (Int64.shift_left (-1L) (32 - plen'))
              (Int64.lognot keep_mask)
          in
          let value' = Int64.logor value (Int64.logand fresh new_mask) in
          go (i + 1) ~plen:plen' ~value:value'
        end
      end
    in
    go 0 ~plen:20 ~value:(block_value !fc);
    incr fc
  in
  let emit_star base children =
    emit (pack_with base (prefix32 ~plen:20 (block_value !fc)));
    for j = 0 to children - 1 do
      if !count < n then
        let v = Int64.logor (block_value !fc) (Int64.shift_left (Int64.of_int j) 8) in
        emit (pack_with base (prefix32 ~plen:24 v))
    done;
    incr fc
  in
  while !count < n do
    let broad_due =
      match profile.Profile.broad_every with
      | Some k -> !since_broad >= k && !fc > 0
      | None -> false
    in
    if broad_due then begin
      since_broad := 0;
      emit_broad ()
    end
    else begin
      let depth =
        Rng.weighted rng
          (Array.map (fun (p, d) -> (p, d)) profile.Profile.chain_depth_dist)
      in
      let base = family_base profile rng in
      let before = !count in
      if depth = 2 && Rng.chance rng profile.Profile.star_prob then
        emit_star base (1 + Rng.int rng profile.Profile.star_max_children)
      else emit_chain base depth;
      since_broad := !since_broad + (!count - before)
    end
  done;
  let arr = Array.of_list (List.rev !rules) in
  assert (Array.length arr = n);
  arr
