module Rule = Fr_tern.Rule
module Ternary = Fr_tern.Ternary

let action_to_string = function
  | Rule.Forward p -> Printf.sprintf "fwd:%d" p
  | Rule.Drop -> "drop"
  | Rule.Controller -> "ctrl"

let action_of_string s =
  match String.lowercase_ascii s with
  | "drop" -> Some Rule.Drop
  | "ctrl" -> Some Rule.Controller
  | s when String.length s > 4 && String.sub s 0 4 = "fwd:" -> (
      match int_of_string_opt (String.sub s 4 (String.length s - 4)) with
      | Some p when p >= 0 -> Some (Rule.Forward p)
      | Some _ | None -> None)
  | _ -> None

let header = "# fastrule-table v1"

let to_string rules =
  let buf = Buffer.create (64 * Array.length rules) in
  Buffer.add_string buf header;
  Buffer.add_string buf "\n# id priority action field(msb..lsb)\n";
  Array.iter
    (fun (r : Rule.t) ->
      Buffer.add_string buf
        (Printf.sprintf "%d %d %s %s\n" r.Rule.id r.Rule.priority
           (action_to_string r.Rule.action)
           (Ternary.to_string r.Rule.field)))
    rules;
  Buffer.contents buf

let of_string text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok (Array.of_list (List.rev acc))
    | line :: rest -> (
        let line = String.trim line in
        if line = "" || (String.length line > 0 && line.[0] = '#') then
          go (lineno + 1) acc rest
        else
          match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
          | [ id; prio; action; field ] -> (
              match
                ( int_of_string_opt id,
                  int_of_string_opt prio,
                  action_of_string action )
              with
              | Some id, Some priority, Some action -> (
                  match Ternary.of_string field with
                  | field ->
                      go (lineno + 1)
                        (Rule.make ~id ~field ~action ~priority :: acc)
                        rest
                  | exception Invalid_argument _ ->
                      Error (Printf.sprintf "line %d: malformed field" lineno))
              | _ ->
                  Error
                    (Printf.sprintf "line %d: malformed id/priority/action" lineno))
          | _ -> Error (Printf.sprintf "line %d: expected 4 columns" lineno))
  in
  go 1 [] lines

let save path rules =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (try output_string oc (to_string rules)
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc;
  Sys.rename tmp path

let load path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let len = in_channel_length ic in
      let text = really_input_string ic len in
      close_in ic;
      of_string text
