type t = {
  name : string;
  chain_depth_dist : (float * int) array;
  star_prob : float;
  star_max_children : int;
  broad_every : int option;
  broad_span : int;
  port_wildcard_prob : float;
  proto_wildcard_prob : float;
}

(* Depth distributions are tuned so the generated tables land in the
   Table II bands: ACL c_avg ~1.0-1.1 with c_max 2-6, FW c_avg ~1.1-1.6
   with c_max up to ~15 (broad rules add one more hop on top of the
   deepest chain). *)

let acl4 =
  {
    name = "acl4";
    chain_depth_dist =
      [| (0.88, 1); (0.095, 2); (0.02, 3); (0.004, 4); (0.001, 5) |];
    star_prob = 0.3;
    star_max_children = 4;
    broad_every = Some 256;
    broad_span = 256;
    port_wildcard_prob = 0.3;
    proto_wildcard_prob = 0.1;
  }

let acl5 =
  {
    name = "acl5";
    chain_depth_dist = [| (0.91, 1); (0.08, 2); (0.009, 3); (0.001, 4) |];
    star_prob = 0.3;
    star_max_children = 3;
    broad_every = None;
    broad_span = 0;
    port_wildcard_prob = 0.2;
    proto_wildcard_prob = 0.05;
  }

let fw4 =
  {
    name = "fw4";
    chain_depth_dist =
      [| (0.72, 1); (0.19, 2); (0.06, 3); (0.02, 4); (0.007, 5); (0.003, 7) |];
    star_prob = 0.4;
    star_max_children = 6;
    broad_every = Some 420;
    broad_span = 256;
    port_wildcard_prob = 0.5;
    proto_wildcard_prob = 0.2;
  }

let fw5 =
  {
    name = "fw5";
    chain_depth_dist =
      [|
        (0.70, 1); (0.20, 2); (0.06, 3); (0.025, 4); (0.01, 5); (0.004, 6); (0.001, 8);
      |];
    star_prob = 0.35;
    star_max_children = 5;
    broad_every = Some 256;
    broad_span = 256;
    port_wildcard_prob = 0.55;
    proto_wildcard_prob = 0.25;
  }

(* IPC (inter-process/chain) profiles are the third ClassBench family; the
   paper's evaluation does not use them, but the generator supports them as
   an extended workload (Dataset.IPC1). *)
let ipc1 =
  {
    name = "ipc1";
    chain_depth_dist =
      [| (0.80, 1); (0.14, 2); (0.04, 3); (0.015, 4); (0.005, 6) |];
    star_prob = 0.25;
    star_max_children = 5;
    broad_every = Some 512;
    broad_span = 128;
    port_wildcard_prob = 0.4;
    proto_wildcard_prob = 0.15;
  }

let pp ppf t =
  Format.fprintf ppf "%s: depths=[%a] broads=%s"
    t.name
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       (fun ppf (p, d) -> Format.fprintf ppf "%d:%.3f" d p))
    (Array.to_list t.chain_depth_dist)
    (match t.broad_every with
    | None -> "none"
    | Some k -> Printf.sprintf "1/%d covering %d blocks" k t.broad_span)
