lib/workload/dataset.ml: Array Classbench Fr_dag Fr_prng Fr_tern Int Profile Route_gen String
