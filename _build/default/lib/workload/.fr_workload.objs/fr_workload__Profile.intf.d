lib/workload/profile.mli: Format
