lib/workload/rules_io.mli: Fr_tern
