lib/workload/route_gen.ml: Array Fr_prng Fr_tern Hashtbl Int64
