lib/workload/rules_io.ml: Array Buffer Fr_tern List Printf String Sys
