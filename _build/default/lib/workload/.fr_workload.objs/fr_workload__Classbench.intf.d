lib/workload/classbench.mli: Fr_prng Fr_tern Profile
