lib/workload/profile.ml: Array Format Printf
