lib/workload/updates.mli: Format Fr_dag Fr_prng Fr_tcam
