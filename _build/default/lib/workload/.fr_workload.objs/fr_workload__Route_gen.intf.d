lib/workload/route_gen.mli: Fr_prng Fr_tern
