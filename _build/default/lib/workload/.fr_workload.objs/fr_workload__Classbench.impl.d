lib/workload/classbench.ml: Array Fr_prng Fr_tern Int64 List Profile
