lib/workload/updates.ml: Array Format Fr_dag Fr_prng Fr_tcam Hashtbl List Printf
