lib/workload/dataset.mli: Fr_dag Fr_tern
