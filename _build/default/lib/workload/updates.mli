(** Update-stream generation (§VI.2).

    The paper feeds each table a stream of random updates: an insertion
    creates a new entry [f] with synthetic dependency requirements
    [f_a -> f -> f_b] where [f_a], [f_b] are random existing entries; a
    deletion removes a random live entry.  Streams come in two flavours:
    insert-only, and alternating insert/delete ("every two updates
    sequentially contain one insert and one delete").

    A stream is generated {e once} and replayed against every algorithm
    under test.  It stores each insertion's {e anchor pair} un-oriented;
    {!resolve} orients it at replay time — by dependency-graph
    reachability when the anchors are already ordered, otherwise by the
    replaying table's current address order — so the request is always
    satisfiable regardless of layout, while the stream (ids, anchors,
    deletions) is identical across runs. *)

type t =
  | Insert of { id : int; anchor : (int * int) option }
      (** [anchor = Some (x, y)]: the new entry must land strictly between
          entries [x] and [y] (orientation decided at replay). *)
  | Delete of { id : int }

val pp : Format.formatter -> t -> unit

val generate :
  Fr_prng.Rng.t -> live:int list -> count:int -> with_deletes:bool -> id_base:int -> t list
(** [count] updates against a table currently holding [live] entries.  New
    entries get ids [id_base, id_base + 1, ...].  With [with_deletes],
    even-indexed updates (2nd, 4th, ...) delete a random live entry. *)

type resolved =
  | R_insert of { id : int; deps : int list; dependents : int list }
      (** [deps] must end up above the new entry, [dependents] below. *)
  | R_delete of { id : int }

val resolve : Fr_dag.Graph.t -> Fr_tcam.Tcam.t -> t -> resolved
(** Orient an update against the current run state.  For an anchor pair
    [(x, y)]: if one already (transitively) depends on the other, that
    order is forced; otherwise the entry currently at the lower address
    becomes the dependent.  Both anchors must be live. *)

val apply_graph : ?contract:bool -> Fr_dag.Graph.t -> resolved -> unit
(** The compiler-stage graph effect: add the node and its edges, or remove
    the node.  Call {e before} scheduling an insert and {e after} applying
    a delete.  [~contract:true] preserves the transitive ordering that
    flowed through a deleted node (see {!Fr_dag.Graph.remove_node}); the
    paper's evaluation deletes plainly, which is the default. *)
