(** CAIDA-style synthetic routing tables (the paper's ROUTE data set).

    Substitutes for the routeviews-rv2-20170606 table: IPv4 destination
    prefixes drawn from a BGP-like prefix-length distribution (mass around
    /24 and /16), clustered into a small pool of first octets so that
    aggregates and their more-specifics coexist — the nesting that gives
    ROUTE the largest [c_avg] of the paper's data sets.  A tunable share of
    prefixes is generated as explicit refinements of existing ones
    (subnets announced inside aggregates).

    Rules match on the destination prefix only; priority is the prefix
    length (longest-prefix match). *)

val generate :
  ?refine_prob:float ->
  Fr_prng.Rng.t ->
  n:int ->
  id_base:int ->
  Fr_tern.Rule.t array
(** Exactly [n] distinct prefixes.  [refine_prob] (default 0.33) is the
    probability that a prefix refines an existing one. *)

val plen_distribution : (float * int) array
(** The fresh-prefix length distribution (exposed for tests). *)
