module Rule = Fr_tern.Rule

type kind = ACL4 | ACL5 | FW4 | FW5 | ROUTE | IPC1

let all = [ ACL4; ACL5; FW4; FW5; ROUTE ]
let extended = all @ [ IPC1 ]

let to_string = function
  | ACL4 -> "acl4"
  | ACL5 -> "acl5"
  | FW4 -> "fw4"
  | FW5 -> "fw5"
  | ROUTE -> "route"
  | IPC1 -> "ipc1"

let of_string s =
  match String.lowercase_ascii s with
  | "acl4" -> Some ACL4
  | "acl5" -> Some ACL5
  | "fw4" -> Some FW4
  | "fw5" -> Some FW5
  | "route" -> Some ROUTE
  | "ipc1" -> Some IPC1
  | _ -> None

let generate kind ~seed ~n =
  let rng = Fr_prng.Rng.create ~seed in
  match kind with
  | ACL4 -> Classbench.generate Profile.acl4 rng ~n ~id_base:0
  | ACL5 -> Classbench.generate Profile.acl5 rng ~n ~id_base:0
  | FW4 -> Classbench.generate Profile.fw4 rng ~n ~id_base:0
  | FW5 -> Classbench.generate Profile.fw5 rng ~n ~id_base:0
  | ROUTE -> Route_gen.generate rng ~n ~id_base:0
  | IPC1 -> Classbench.generate Profile.ipc1 rng ~n ~id_base:0

let precedence_order rules =
  let idx = Array.init (Array.length rules) (fun i -> i) in
  Array.sort
    (fun i j ->
      let a = rules.(i) and b = rules.(j) in
      let c = Int.compare a.Rule.priority b.Rule.priority in
      if c <> 0 then c else Int.compare b.Rule.id a.Rule.id)
    idx;
  Array.map (fun i -> rules.(i).Rule.id) idx

type table = {
  kind : kind;
  rules : Rule.t array;
  graph : Fr_dag.Graph.t;
  order : int array;
}

let build_table kind ~seed ~n =
  let rules = generate kind ~seed ~n in
  let graph = Fr_dag.Build.compile_fast rules in
  let order = precedence_order rules in
  { kind; rules; graph; order }

let stats t = Fr_dag.Stats.compute t.graph
