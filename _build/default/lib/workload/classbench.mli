(** ClassBench-style synthetic rule tables (ACL and firewall shapes).

    Substitutes for ClassBench + ClassBench-ng from the paper's §VI.2: the
    generator emits 5-tuple OpenFlow rules organised into nesting families
    (see {!Profile}), giving direct control over the dependency-graph
    statistics that drive the schedulers' costs.  Rule priorities equal the
    number of cared bits of the packed match field, so a refinement always
    beats what it refines — the longest-prefix-match convention. *)

val generate :
  Profile.t -> Fr_prng.Rng.t -> n:int -> id_base:int -> Fr_tern.Rule.t array
(** [generate profile rng ~n ~id_base] — exactly [n] rules with ids
    [id_base .. id_base + n - 1].  Deterministic in the generator state. *)

val priority_of_field : Fr_tern.Ternary.t -> int
(** The cared-bit count used as priority (exposed so update generators can
    price synthetic refinements consistently). *)
