(** Structural parameters of the synthetic ClassBench-style generators.

    The paper's data sets (Table II) are characterised by how often rules
    nest (dependency chains), how deep the nesting goes, and how many
    broad low-priority rules overlap large swaths of the table.  A profile
    captures those knobs; {!Classbench.generate} turns a profile into a
    rule table whose dependency-graph statistics land in the Table II
    bands.

    The generator organises rules into disjoint {e families} (each family
    owns a /20 destination block, so families never overlap each other):

    - a {e chain} family of depth [d] is a root plus [d - 1] successive
      refinements — a dependency chain of diameter [d];
    - a {e star} family is a root plus [k] pairwise-disjoint refinements —
      diameter 2, fan-out [k];
    - {e broad} rules (destination /12, lowest priority) overlap up to 256
      consecutive family blocks, supplying the bulk of the edge count [m]
      in the ACL4/FW-style tables. *)

type t = {
  name : string;
  chain_depth_dist : (float * int) array;
      (** family diameter distribution (depth 1 = independent rule) *)
  star_prob : float;
      (** probability that a depth-2 family is a star rather than a chain *)
  star_max_children : int;
  broad_every : int option;
      (** one broad rule per this many ordinary rules; [None] = no broads *)
  broad_span : int;  (** how many family blocks a broad rule covers (<= 256) *)
  port_wildcard_prob : float;  (** per rule, both ports wildcarded *)
  proto_wildcard_prob : float;
}

val acl4 : t
val acl5 : t
val fw4 : t
val fw5 : t

val ipc1 : t
(** The third ClassBench family (not part of the paper's evaluation);
    used by the extended {!Dataset.IPC1} workload. *)

val pp : Format.formatter -> t -> unit
