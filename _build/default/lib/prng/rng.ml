(* splitmix64: Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators", OOPSLA 2014.  The golden-gamma increment guarantees a full
   2^64 period and the finaliser mixes state bits thoroughly. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create ~seed = { state = mix (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = bits64 t }

let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling over the low 62 bits avoids modulo bias. *)
  let mask = 0x3FFFFFFFFFFFFFFF in
  let rec loop () =
    let r = Int64.to_int (bits64 t) land mask in
    if r >= mask - (mask mod bound) then loop () else r mod bound
  in
  loop ()

let int_in t lo hi =
  if lo > hi then invalid_arg "Rng.int_in: lo > hi";
  lo + int t (hi - lo + 1)

let float t =
  (* 53 high-quality mantissa bits. *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int r /. 9007199254740992.0

let bool t = Int64.logand (bits64 t) 1L = 1L

let chance t p = if p >= 1.0 then true else if p <= 0.0 then false else float t < p

let int32_bits t = Int64.to_int32 (bits64 t)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let weighted t choices =
  if Array.length choices = 0 then invalid_arg "Rng.weighted: empty array";
  let total = Array.fold_left (fun acc (w, _) -> acc +. w) 0.0 choices in
  if total <= 0.0 then invalid_arg "Rng.weighted: weights sum to zero";
  let target = float t *. total in
  let rec go i acc =
    if i = Array.length choices - 1 then snd choices.(i)
    else
      let w, x = choices.(i) in
      let acc = acc +. w in
      if target < acc then x else go (i + 1) acc
  in
  go 0 0.0

let geometric t ~p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Rng.geometric: p out of (0,1]";
  if p >= 1.0 then 0
  else
    (* Inverse-transform sampling: floor(log(u) / log(1-p)). *)
    let u = 1.0 -. float t in
    int_of_float (Float.floor (Float.log u /. Float.log (1.0 -. p)))
