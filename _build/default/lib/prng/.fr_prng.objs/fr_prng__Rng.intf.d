lib/prng/rng.mli:
