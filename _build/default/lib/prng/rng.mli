(** Deterministic pseudo-random number generation.

    All randomness in this repository flows through this module so that
    workloads, update streams and property tests are reproducible from a
    single integer seed.  The core generator is splitmix64, which has a
    64-bit state, passes BigCrush, and is trivially splittable — ideal for
    deriving independent streams for independent experiment legs. *)

type t
(** A mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] makes a fresh generator.  Equal seeds yield equal
    streams. *)

val split : t -> t
(** [split t] derives a new generator whose stream is statistically
    independent of [t]'s continuation.  Advances [t]. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing it. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive).
    Requires [lo <= hi]. *)

val float : t -> float
(** Uniform float in [\[0, 1)]. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p] (clamped to [\[0,1\]]). *)

val int32_bits : t -> int32
(** Next raw 32-bit output. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array.
    @raise Invalid_argument on an empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list.
    @raise Invalid_argument on an empty list. *)

val weighted : t -> (float * 'a) array -> 'a
(** [weighted t choices] picks an element with probability proportional to
    its weight.  Weights must be non-negative and not all zero.
    @raise Invalid_argument on an empty or all-zero array. *)

val geometric : t -> p:float -> int
(** [geometric t ~p] samples the number of failures before the first success
    of a Bernoulli([p]) trial, i.e. a geometric distribution on
    [{0, 1, ...}].  Requires [0 < p <= 1]. *)
