module Dataset = Fr_workload.Dataset
module Updates = Fr_workload.Updates
module Layout = Fr_tcam.Layout

type spec = {
  kind : Dataset.kind;
  n : int;
  updates : int;
  with_deletes : bool;
  seed : int;
}

let updates_for n = if n <= 250 then 250 else if n <= 500 then 500 else 1000

type row = {
  algo : string;
  kind : string;
  n : int;
  updates_run : int;
  failed : int;
  fw : Measure.summary;
  tcam_total_ms : float;
  tcam_avg_ms : float;
  writes : int;
  erases : int;
  moves : int;
  seq_len_mean : float;
}

let table_memo : (Dataset.kind * int * int, Dataset.table) Hashtbl.t =
  Hashtbl.create 16

let table_cached kind ~seed ~n =
  match Hashtbl.find_opt table_memo (kind, seed, n) with
  | Some t -> t
  | None ->
      let t = Dataset.build_table kind ~seed ~n in
      Hashtbl.replace table_memo (kind, seed, n) t;
      t

let stream_for (spec : spec) =
  let table = table_cached spec.kind ~seed:spec.seed ~n:spec.n in
  let rng = Fr_prng.Rng.create ~seed:(spec.seed lxor 0x5EED) in
  let live = Array.to_list table.Dataset.order in
  Updates.generate rng ~live ~count:spec.updates ~with_deletes:spec.with_deletes
    ~id_base:(Array.length table.Dataset.rules)

type participation = All | Cap of int | Skip

let default_participation kind n =
  match kind with
  | Firmware.Naive ->
      (* O(n^2) per update: the paper drops it at 20k/40k ("cannot finish
         in half an hour"); we additionally cap the number of measured
         updates at mid sizes — per-update cost is what the figure plots,
         and it does not depend on how many updates were sampled. *)
      if n >= 20_000 then Skip
      else if n >= 10_000 then Cap 10
      else if n >= 4_000 then Cap 30
      else if n >= 2_000 then Cap 100
      else if n >= 1_000 then Cap 200
      else All
  | Firmware.Ruletris ->
      if n >= 20_000 then Cap 150 else if n >= 10_000 then Cap 300 else All
  | Firmware.FR_O _ | Firmware.FR_SD _ | Firmware.FR_SB _ -> All

let count_inserts stream =
  List.fold_left
    (fun acc u -> match u with Updates.Insert _ -> acc + 1 | Updates.Delete _ -> acc)
    0 stream

let run_one ?latency ?layout_override ?cap ~table ~stream kind =
  let stream =
    match cap with
    | None -> stream
    | Some k -> List.filteri (fun i _ -> i < k) stream
  in
  let n = Array.length table.Dataset.rules in
  let layout =
    Option.value layout_override ~default:(Firmware.layout_of kind)
  in
  let tcam_size =
    Layout.capacity_needed layout ~n:(n + count_inserts stream) + 16
  in
  let run = Firmware.create ?latency ?layout_override kind ~table ~tcam_size () in
  let failed = Firmware.exec_all run stream in
  let fw = Measure.Series.summary (Firmware.firmware_times run) in
  let done_count = Firmware.updates_done run in
  {
    algo = Firmware.algo_kind_name kind;
    kind = Dataset.to_string table.Dataset.kind;
    n;
    updates_run = done_count;
    failed;
    fw;
    tcam_total_ms = Firmware.tcam_ms_total run;
    tcam_avg_ms =
      (if done_count = 0 then 0.0
       else Firmware.tcam_ms_total run /. float_of_int done_count);
    writes = Firmware.tcam_writes run;
    erases = Firmware.tcam_erases run;
    moves = Firmware.moves_total run;
    seq_len_mean = (Measure.Series.summary (Firmware.seq_lengths run)).Measure.mean;
  }

let run_spec ?(participation = default_participation) (spec : spec) ~algos =
  let table = table_cached spec.kind ~seed:spec.seed ~n:spec.n in
  let stream = stream_for spec in
  List.filter_map
    (fun kind ->
      match participation kind spec.n with
      | Skip -> None
      | All -> Some (run_one ~table ~stream kind)
      | Cap k -> Some (run_one ~cap:k ~table ~stream kind))
    algos
