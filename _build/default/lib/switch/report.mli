(** Plain-text reporting of experiment results — the tables and series the
    paper's figures plot. *)

val print_header : string -> unit
(** Banner with a rule line. *)

val print_rows : ?out:Format.formatter -> Experiment.row list -> unit
(** Aligned columns: algo, kind, n, updates, firmware mean/max, TCAM
    total/avg, writes/erases/moves, mean sequence length. *)

val print_table2 :
  ?out:Format.formatter ->
  (Fr_workload.Dataset.kind * int * Fr_dag.Stats.t) list ->
  unit
(** Table II layout: one block per kind, one column per size, rows
    n / m / c_max / c_avg / d_in. *)

val csv_header : string
val row_to_csv : Experiment.row -> string

val speedup :
  Experiment.row list -> baseline:string -> algo:string -> float option
(** Ratio of mean firmware times baseline/algo within one row set (same
    kind and n), when both are present and non-zero. *)
