lib/switch/measure.ml: Array Float Format Unix
