lib/switch/queue_sim.ml: Array Firmware Float Format Fr_prng Fr_tcam Measure Queue
