lib/switch/queue_sim.mli: Firmware Format Fr_prng Fr_tcam
