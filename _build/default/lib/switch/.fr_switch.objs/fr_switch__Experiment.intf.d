lib/switch/experiment.mli: Firmware Fr_tcam Fr_workload Measure
