lib/switch/report.mli: Experiment Format Fr_dag Fr_workload
