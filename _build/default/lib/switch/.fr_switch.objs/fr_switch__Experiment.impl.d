lib/switch/experiment.ml: Array Firmware Fr_prng Fr_tcam Fr_workload Hashtbl List Measure Option
