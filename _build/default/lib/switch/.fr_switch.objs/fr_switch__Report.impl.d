lib/switch/report.ml: Experiment Format Fr_dag Fr_workload Int List Measure Printf String
