lib/switch/firmware.mli: Fr_dag Fr_sched Fr_tcam Fr_workload Measure
