lib/switch/firmware.ml: Fr_dag Fr_sched Fr_tcam Fr_workload List Measure Option
