lib/switch/agent.ml: Array Firmware Format Fr_dag Fr_sched Fr_tcam Fr_tern Fr_workload Hashtbl Int List Measure Option Printf Sys
