lib/switch/agent.mli: Firmware Format Fr_dag Fr_tcam Fr_tern
