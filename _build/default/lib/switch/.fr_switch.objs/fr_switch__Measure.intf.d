lib/switch/measure.mli: Format
