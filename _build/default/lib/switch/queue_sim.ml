module Rng = Fr_prng.Rng

type arrival = Poisson of float | Periodic of float

type result = {
  offered : int;
  served : int;
  dropped : int;
  mean_sojourn_ms : float;
  p99_sojourn_ms : float;
  max_sojourn_ms : float;
  max_queue_depth : int;
  utilisation : float;
}

(* Exponential inter-arrival with mean 1000/rate ms. *)
let next_gap rng = function
  | Poisson rate ->
      if rate <= 0.0 then invalid_arg "Queue_sim: arrival rate must be positive";
      let u = 1.0 -. Rng.float rng in
      -.Float.log u *. 1000.0 /. rate
  | Periodic rate ->
      if rate <= 0.0 then invalid_arg "Queue_sim: arrival rate must be positive";
      1000.0 /. rate

let simulate rng ~service_ms ~arrival ?queue_capacity ~count () =
  if Array.length service_ms = 0 then
    invalid_arg "Queue_sim.simulate: no service times";
  if count <= 0 then invalid_arg "Queue_sim.simulate: count must be positive";
  let sojourns = ref [] in
  let served = ref 0 and dropped = ref 0 in
  let clock = ref 0.0 in
  (* Finish times of accepted-but-unfinished updates, oldest first: the
     backlog.  A FIFO single server means each accepted update starts when
     the previous one finishes. *)
  let backlog = Queue.create () in
  let prev_finish = ref 0.0 in
  let busy = ref 0.0 in
  let max_depth = ref 0 in
  let svc_index = ref 0 in
  for _ = 1 to count do
    clock := !clock +. next_gap rng arrival;
    (* Retire finished work from the backlog. *)
    while (not (Queue.is_empty backlog)) && Queue.peek backlog <= !clock do
      ignore (Queue.pop backlog)
    done;
    let depth = Queue.length backlog in
    let accept =
      match queue_capacity with Some cap -> depth < cap | None -> true
    in
    if not accept then incr dropped
    else begin
      let service = service_ms.(!svc_index mod Array.length service_ms) in
      incr svc_index;
      let start = Float.max !clock !prev_finish in
      let finish = start +. service in
      prev_finish := finish;
      busy := !busy +. service;
      Queue.push finish backlog;
      max_depth := max !max_depth (depth + 1);
      sojourns := (finish -. !clock) :: !sojourns;
      incr served
    end
  done;
  let s = Measure.summarize (Array.of_list !sojourns) in
  let makespan = Float.max !prev_finish !clock in
  {
    offered = count;
    served = !served;
    dropped = !dropped;
    mean_sojourn_ms = s.Measure.mean;
    p99_sojourn_ms = s.Measure.p99;
    max_sojourn_ms = s.Measure.max;
    max_queue_depth = !max_depth;
    utilisation = (if makespan > 0.0 then !busy /. makespan else 0.0);
  }

let service_times_of_run ?(latency = Fr_tcam.Latency.default) run =
  let fw = Measure.Series.to_array (Firmware.firmware_times run) in
  let ops = Measure.Series.to_array (Firmware.seq_lengths run) in
  (* seq_lengths records op counts; with symmetric write/erase cost the
     hardware time is ops x cost.  (Asymmetric costs would need per-op
     kinds; the paper's model is symmetric.) *)
  Array.map2 (fun f o -> f +. (o *. latency.Fr_tcam.Latency.write_ms)) fw ops

let saturation_rate ~service_ms =
  let s = Measure.summarize service_ms in
  if s.Measure.mean <= 0.0 then infinity else 1000.0 /. s.Measure.mean

let pp_result ppf r =
  Format.fprintf ppf
    "served %d/%d (dropped %d) sojourn mean=%.2fms p99=%.2fms max=%.2fms \
     depth<=%d util=%.0f%%"
    r.served r.offered r.dropped r.mean_sojourn_ms r.p99_sojourn_ms
    r.max_sojourn_ms r.max_queue_depth (100.0 *. r.utilisation)
