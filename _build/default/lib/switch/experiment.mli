(** Experiment driver: build a table, generate one update stream, replay it
    against each algorithm, and collect the paper's two metrics.

    This is the engine behind every figure reproduction in [bench/main.exe]
    (see DESIGN.md §5).  Tables are memoised per (kind, n, seed) because
    compilation of the 40k tables is the expensive part of a sweep. *)

type spec = {
  kind : Fr_workload.Dataset.kind;
  n : int;  (** initial table size *)
  updates : int;  (** stream length *)
  with_deletes : bool;  (** alternating insert/delete stream *)
  seed : int;
}

val updates_for : int -> int
(** The paper's stream lengths: 250 updates for a 250-entry table, 500 for
    500, 1000 for everything larger. *)

type row = {
  algo : string;
  kind : string;
  n : int;
  updates_run : int;
  failed : int;
  fw : Measure.summary;  (** per-update firmware time, ms *)
  tcam_total_ms : float;  (** modelled hardware time for the whole stream *)
  tcam_avg_ms : float;  (** per executed update *)
  writes : int;
  erases : int;
  moves : int;
  seq_len_mean : float;
}

val table_cached :
  Fr_workload.Dataset.kind -> seed:int -> n:int -> Fr_workload.Dataset.table
(** Memoised {!Fr_workload.Dataset.build_table}. *)

val stream_for : spec -> Fr_workload.Updates.t list
(** The deterministic update stream of a spec (depends only on the spec). *)

type participation = All | Cap of int | Skip
(** How much of the stream an algorithm runs: everything, only the first
    [k] updates (documented cap for asymptotically slow baselines at large
    [n]), or not at all (the paper drops Naive at 20k/40k). *)

val run_one :
  ?latency:Fr_tcam.Latency.t ->
  ?layout_override:Fr_tcam.Layout.t ->
  ?cap:int ->
  table:Fr_workload.Dataset.table ->
  stream:Fr_workload.Updates.t list ->
  Firmware.algo_kind ->
  row
(** [layout_override] places the table under a different layout than the
    algorithm's default — used by the interleaved-K ablation. *)

val run_spec :
  ?participation:(Firmware.algo_kind -> int -> participation) ->
  spec ->
  algos:Firmware.algo_kind list ->
  row list
(** Replays the spec's stream against each algorithm (fresh table image
    each).  [participation kind n] defaults to {!default_participation}. *)

val default_participation : Firmware.algo_kind -> int -> participation
(** Paper-faithful: Naive skipped at n >= 20k and capped at mid sizes
    (O(n^2)/update); RuleTris capped at n >= 10k.  The caps only bound
    wall-clock — the figures plot per-update cost, which does not depend
    on how many updates were sampled.  FastRule variants always run in
    full. *)
