(** Wall-clock measurement and summary statistics for experiment runs. *)

val now_ms : unit -> float
(** Monotonic-enough wall clock in milliseconds (gettimeofday-based; the
    measured spans are pure computation, so NTP skew is a non-issue at the
    durations involved). *)

val time_ms : (unit -> 'a) -> 'a * float
(** Run the thunk, returning its result and the elapsed milliseconds. *)

type summary = {
  count : int;
  total : float;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

val summarize : float array -> summary
(** Percentiles by nearest-rank on a sorted copy.  All fields are 0 for an
    empty array. *)

val pp_summary : Format.formatter -> summary -> unit

module Series : sig
  (** A growable series of float samples. *)

  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val to_array : t -> float array
  val summary : t -> summary
end
