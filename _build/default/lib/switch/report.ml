module Dataset = Fr_workload.Dataset
module Stats = Fr_dag.Stats

let std = Format.std_formatter

let print_header title =
  Format.printf "@.=== %s ===@." title

let print_rows ?(out = std) rows =
  Format.fprintf out "%-10s %-6s %7s %6s | %12s %12s | %12s %10s | %8s %7s %7s %7s@."
    "algo" "kind" "n" "upd" "fw-mean(ms)" "fw-max(ms)" "tcam-tot(ms)"
    "tcam-avg" "writes" "erases" "moves" "seq-len";
  List.iter
    (fun (r : Experiment.row) ->
      Format.fprintf out
        "%-10s %-6s %7d %6d | %12.5f %12.5f | %12.1f %10.3f | %8d %7d %7d %7.2f@."
        r.Experiment.algo r.kind r.n r.updates_run r.fw.Measure.mean
        r.fw.Measure.max r.tcam_total_ms r.tcam_avg_ms r.writes r.erases r.moves
        r.seq_len_mean)
    rows

let print_table2 ?(out = std) entries =
  let kinds =
    List.sort_uniq compare (List.map (fun (k, _, _) -> k) entries)
  in
  List.iter
    (fun kind ->
      let cells =
        List.filter (fun (k, _, _) -> k = kind) entries
        |> List.sort (fun (_, a, _) (_, b, _) -> Int.compare a b)
      in
      Format.fprintf out "@.Type %s@." (String.uppercase_ascii (Dataset.to_string kind));
      let line name f =
        Format.fprintf out "%-6s" name;
        List.iter (fun (_, _, s) -> Format.fprintf out " %9s" (f s)) cells;
        Format.fprintf out "@."
      in
      line "n" (fun s -> string_of_int s.Stats.n);
      line "m" (fun s -> string_of_int s.Stats.m);
      line "c_max" (fun s -> string_of_int s.Stats.c_max);
      line "c_avg" (fun s -> Printf.sprintf "%.1f" s.Stats.c_avg);
      line "d_in" (fun s -> Printf.sprintf "%.2f" s.Stats.d_in))
    kinds

let csv_header =
  "algo,kind,n,updates,failed,fw_mean_ms,fw_max_ms,fw_p50_ms,fw_p99_ms,tcam_total_ms,tcam_avg_ms,writes,erases,moves,seq_len_mean"

let row_to_csv (r : Experiment.row) =
  Printf.sprintf "%s,%s,%d,%d,%d,%.6f,%.6f,%.6f,%.6f,%.3f,%.5f,%d,%d,%d,%.3f"
    r.Experiment.algo r.kind r.n r.updates_run r.failed r.fw.Measure.mean
    r.fw.Measure.max r.fw.Measure.p50 r.fw.Measure.p99 r.tcam_total_ms
    r.tcam_avg_ms r.writes r.erases r.moves r.seq_len_mean

let speedup rows ~baseline ~algo =
  let find name =
    List.find_opt (fun (r : Experiment.row) -> r.Experiment.algo = name) rows
  in
  match (find baseline, find algo) with
  | Some b, Some a when a.Experiment.fw.Measure.mean > 0.0 ->
      Some (b.Experiment.fw.Measure.mean /. a.Experiment.fw.Measure.mean)
  | _ -> None
