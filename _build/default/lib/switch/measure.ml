let now_ms () = Unix.gettimeofday () *. 1000.0

let time_ms f =
  let t0 = now_ms () in
  let x = f () in
  (x, now_ms () -. t0)

type summary = {
  count : int;
  total : float;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let summarize samples =
  let n = Array.length samples in
  if n = 0 then
    { count = 0; total = 0.; mean = 0.; min = 0.; max = 0.; p50 = 0.; p95 = 0.; p99 = 0. }
  else begin
    let sorted = Array.copy samples in
    Array.sort Float.compare sorted;
    let total = Array.fold_left ( +. ) 0.0 sorted in
    let pct p =
      let rank = int_of_float (Float.ceil (p *. float_of_int n)) in
      sorted.(max 0 (min (n - 1) (rank - 1)))
    in
    {
      count = n;
      total;
      mean = total /. float_of_int n;
      min = sorted.(0);
      max = sorted.(n - 1);
      p50 = pct 0.50;
      p95 = pct 0.95;
      p99 = pct 0.99;
    }
  end

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.4fms max=%.4fms p50=%.4fms p95=%.4fms p99=%.4fms" s.count
    s.mean s.max s.p50 s.p95 s.p99

module Series = struct
  type t = { mutable data : float array; mutable len : int }

  let create () = { data = Array.make 256 0.0; len = 0 }

  let add t x =
    if t.len = Array.length t.data then begin
      let bigger = Array.make (2 * t.len) 0.0 in
      Array.blit t.data 0 bigger 0 t.len;
      t.data <- bigger
    end;
    t.data.(t.len) <- x;
    t.len <- t.len + 1

  let count t = t.len
  let to_array t = Array.sub t.data 0 t.len
  let summary t = summarize (to_array t)
end
