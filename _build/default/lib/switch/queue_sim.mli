(** Control-loop queueing simulation.

    The paper motivates fast updates with the switch's update-processing
    rate (a measured commercial switch sustains ~42 rule updates/s, and
    carrier failure recovery budgets 25 ms end-to-end).  A slow scheduler
    does not just delay one update — arrivals queue behind it, so the
    {e sojourn time} (queueing + service) is what the controller actually
    observes.

    This module runs a single-server FIFO discrete-event simulation:
    updates arrive (Poisson or periodic), each occupies the switch for its
    measured service time (firmware computation + modelled TCAM writes),
    and we report the sojourn distribution, queue depth and utilisation.
    Service times come from a real {!Firmware} run via
    {!service_times_of_run}, so the simulation composes directly with the
    experiment driver. *)

type arrival =
  | Poisson of float  (** mean arrivals per second *)
  | Periodic of float  (** exactly this many per second, evenly spaced *)

type result = {
  offered : int;  (** arrivals generated *)
  served : int;
  dropped : int;  (** arrivals refused because the queue was full *)
  mean_sojourn_ms : float;
  p99_sojourn_ms : float;
  max_sojourn_ms : float;
  max_queue_depth : int;
  utilisation : float;  (** busy time / makespan *)
}

val simulate :
  Fr_prng.Rng.t ->
  service_ms:float array ->
  arrival:arrival ->
  ?queue_capacity:int ->
  count:int ->
  unit ->
  result
(** [simulate rng ~service_ms ~arrival ~count ()] generates [count]
    arrivals; the i-th accepted update's service time is
    [service_ms.(i mod length)].  [queue_capacity] (default unbounded)
    drops arrivals that would exceed the backlog, like a full switch
    message buffer.
    @raise Invalid_argument on an empty [service_ms] or [count <= 0]. *)

val service_times_of_run : ?latency:Fr_tcam.Latency.t -> Firmware.run -> float array
(** Per-update service time of a completed run: measured firmware time
    plus the modelled hardware time of that update's op sequence. *)

val saturation_rate : service_ms:float array -> float
(** Updates per second at 100% utilisation = 1000 / mean service time. *)

val pp_result : Format.formatter -> result -> unit
