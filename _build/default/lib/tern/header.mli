(** The OpenFlow-style 5-tuple header space used throughout the repository.

    A match field covers five packet-header fields, packed (most significant
    first) as

    {v  src_ip(32) | dst_ip(32) | src_port(16) | dst_port(16) | proto(8)  v}

    for a total width of 104 bits.  ClassBench-ng converts ClassBench rules
    and CAIDA prefixes into exactly this kind of OpenFlow match, so the
    synthetic workload generators produce fields of this shape. *)

val total_width : int
(** 104. *)

type field_spec = {
  src_ip : Ternary.t;  (** width 32 *)
  dst_ip : Ternary.t;  (** width 32 *)
  src_port : Ternary.t;  (** width 16 *)
  dst_port : Ternary.t;  (** width 16 *)
  proto : Ternary.t;  (** width 8 *)
}
(** Per-field ternary patterns before packing. *)

val pack : field_spec -> Ternary.t
(** Assemble the 104-bit match field.
    @raise Invalid_argument if any field has the wrong width. *)

val unpack : Ternary.t -> field_spec
(** Split a 104-bit match field back into its five components.
    @raise Invalid_argument if the input is not 104 bits wide. *)

val wildcard : field_spec
(** All five fields fully wildcarded. *)

type packet = {
  p_src_ip : int64;
  p_dst_ip : int64;
  p_src_port : int;
  p_dst_port : int;
  p_proto : int;
}
(** An exact packet header. *)

val packet_bits : packet -> int64 array
(** Pack a packet into chunks compatible with {!Ternary.matches_value} on a
    104-bit match field. *)

val random_packet : Fr_prng.Rng.t -> packet
(** Uniform random header. *)

val packet_in : Fr_prng.Rng.t -> Ternary.t -> packet
(** [packet_in rng field] samples a packet matched by the given 104-bit
    field — used to exercise lookup paths on purpose-built packets. *)

val pp_field : Format.formatter -> field_spec -> unit
val pp_packet : Format.formatter -> packet -> unit
