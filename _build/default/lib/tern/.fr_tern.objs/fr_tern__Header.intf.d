lib/tern/header.mli: Format Fr_prng Ternary
