lib/tern/ternary.mli: Format Fr_prng
