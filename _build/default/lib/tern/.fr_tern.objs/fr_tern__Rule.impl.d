lib/tern/rule.ml: Format Header Int Map Set Ternary
