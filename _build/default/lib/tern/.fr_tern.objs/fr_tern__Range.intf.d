lib/tern/range.mli: Header Ternary
