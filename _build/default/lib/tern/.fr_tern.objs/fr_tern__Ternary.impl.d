lib/tern/ternary.ml: Array Format Fr_prng Hashtbl Int Int64 String
