lib/tern/range.ml: Header Int64 List Ternary
