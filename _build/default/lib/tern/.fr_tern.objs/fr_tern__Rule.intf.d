lib/tern/rule.mli: Format Header Map Set Ternary
