lib/tern/header.ml: Array Format Fr_prng Int64 Printf Ternary
