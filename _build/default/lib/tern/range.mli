(** Range-to-prefix expansion — how TCAMs cope with range matches.

    A TCAM cell matches a ternary pattern, not an interval, so a rule with
    a port range (say [1024-65535]) must be {e expanded} into several
    prefix patterns whose union is exactly the interval.  The classic
    algorithm yields at most [2w - 2] prefixes for a [w]-bit field, and
    real ACL rule sets routinely multiply several-fold under expansion —
    one more reason TCAM capacity and update cost matter.

    This module implements minimal prefix covers for integer intervals and
    five-tuple expansion over port ranges (the expanded siblings are
    pairwise disjoint, so they can share the original rule's priority). *)

val expand : width:int -> lo:int -> hi:int -> Ternary.t list
(** Minimal prefix cover of the inclusive interval [\[lo, hi\]] over
    [width]-bit values, in ascending order of their low ends.
    @raise Invalid_argument unless
      [0 <= lo <= hi < 2^width] and [0 < width <= 62]. *)

val cover_size : width:int -> lo:int -> hi:int -> int
(** [List.length (expand ...)] without building the list. *)

val max_cover_size : width:int -> int
(** The worst case: [2 * width - 2] for [width >= 2], 1 for width 1. *)

val expand_five_tuple :
  ?src_range:int * int ->
  ?dst_range:int * int ->
  Header.field_spec ->
  Header.field_spec list
(** Substitute every combination of the two port ranges' covers into the
    spec (whose own port fields are ignored where a range is given).  The
    result has [cover(src) x cover(dst)] specs with pairwise-disjoint
    match sets covering exactly the ranged rule. *)
