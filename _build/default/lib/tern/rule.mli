(** Flow entries (rules): a match field plus an action.

    Rules are the unit stored in the TCAM and the nodes of the dependency
    graph.  Each rule carries a stable integer id assigned at creation; ids
    are how the DAG, the TCAM model and the schedulers refer to entries
    without sharing mutable rule state. *)

type action =
  | Forward of int  (** output port *)
  | Drop
  | Controller  (** punt to the SDN controller *)

type t = {
  id : int;  (** unique, stable identity *)
  field : Ternary.t;  (** the (packed) match field *)
  action : action;
  priority : int;  (** policy priority: larger = matched first *)
}

val make : id:int -> field:Ternary.t -> action:action -> priority:int -> t

val overlaps : t -> t -> bool
(** Match-field overlap (see {!Ternary.overlaps}). *)

val subsumes : t -> t -> bool
(** [subsumes a b]: [a]'s field generalises [b]'s. *)

val matches_packet : t -> Header.packet -> bool
(** Only meaningful for 104-bit (5-tuple) rules. *)

val conflicts : t -> t -> bool
(** [conflicts a b]: the fields overlap and the actions differ — the cases
    where relative TCAM order is semantically observable.  The dependency
    graph may conservatively also order non-conflicting overlaps; this
    predicate is used by the lookup-equivalence tests. *)

val equal_action : action -> action -> bool
val pp_action : Format.formatter -> action -> unit
val pp : Format.formatter -> t -> unit

module Id_set : Set.S with type elt = int
module Id_map : Map.S with type key = int
