(* Field packing layout (bit 0 = least significant position of the 104-bit
   match field):

     proto     bits   0 ..   7
     dst_port  bits   8 ..  23
     src_port  bits  24 ..  39
     dst_ip    bits  40 ..  71
     src_ip    bits  72 .. 103 *)

let total_width = 104

type field_spec = {
  src_ip : Ternary.t;
  dst_ip : Ternary.t;
  src_port : Ternary.t;
  dst_port : Ternary.t;
  proto : Ternary.t;
}

let check_width name w t =
  if Ternary.width t <> w then
    invalid_arg (Printf.sprintf "Header: field %s must be %d bits wide" name w)

let pack f =
  check_width "src_ip" 32 f.src_ip;
  check_width "dst_ip" 32 f.dst_ip;
  check_width "src_port" 16 f.src_port;
  check_width "dst_port" 16 f.dst_port;
  check_width "proto" 8 f.proto;
  Ternary.concat f.src_ip
    (Ternary.concat f.dst_ip
       (Ternary.concat f.src_port (Ternary.concat f.dst_port f.proto)))

let unpack t =
  if Ternary.width t <> total_width then
    invalid_arg "Header.unpack: expected a 104-bit match field";
  {
    proto = Ternary.slice t ~lo:0 ~len:8;
    dst_port = Ternary.slice t ~lo:8 ~len:16;
    src_port = Ternary.slice t ~lo:24 ~len:16;
    dst_ip = Ternary.slice t ~lo:40 ~len:32;
    src_ip = Ternary.slice t ~lo:72 ~len:32;
  }

let wildcard =
  {
    src_ip = Ternary.any 32;
    dst_ip = Ternary.any 32;
    src_port = Ternary.any 16;
    dst_port = Ternary.any 16;
    proto = Ternary.any 8;
  }

type packet = {
  p_src_ip : int64;
  p_dst_ip : int64;
  p_src_port : int;
  p_dst_port : int;
  p_proto : int;
}

let set_bits chunks ~lo ~len v =
  for i = 0 to len - 1 do
    if Int64.logand (Int64.shift_right_logical v i) 1L = 1L then begin
      let pos = lo + i in
      let c = pos / 64 and b = pos land 63 in
      chunks.(c) <- Int64.logor chunks.(c) (Int64.shift_left 1L b)
    end
  done

let packet_bits p =
  let chunks = Array.make 2 0L in
  set_bits chunks ~lo:0 ~len:8 (Int64.of_int p.p_proto);
  set_bits chunks ~lo:8 ~len:16 (Int64.of_int p.p_dst_port);
  set_bits chunks ~lo:24 ~len:16 (Int64.of_int p.p_src_port);
  set_bits chunks ~lo:40 ~len:32 p.p_dst_ip;
  set_bits chunks ~lo:72 ~len:32 p.p_src_ip;
  chunks

let mask32 = 0xFFFFFFFFL

let random_packet rng =
  {
    p_src_ip = Int64.logand (Fr_prng.Rng.bits64 rng) mask32;
    p_dst_ip = Int64.logand (Fr_prng.Rng.bits64 rng) mask32;
    p_src_port = Fr_prng.Rng.int rng 65536;
    p_dst_port = Fr_prng.Rng.int rng 65536;
    p_proto = Fr_prng.Rng.int rng 256;
  }

let bits_in chunks ~lo ~len =
  let v = ref 0L in
  for i = len - 1 downto 0 do
    let pos = lo + i in
    let c = pos / 64 and b = pos land 63 in
    let bit = Int64.logand (Int64.shift_right_logical chunks.(c) b) 1L in
    v := Int64.logor (Int64.shift_left !v 1) bit
  done;
  !v

let packet_in rng field =
  if Ternary.width field <> total_width then
    invalid_arg "Header.packet_in: expected a 104-bit match field";
  let chunks = Ternary.random_exact_in rng field in
  {
    p_proto = Int64.to_int (bits_in chunks ~lo:0 ~len:8);
    p_dst_port = Int64.to_int (bits_in chunks ~lo:8 ~len:16);
    p_src_port = Int64.to_int (bits_in chunks ~lo:24 ~len:16);
    p_dst_ip = bits_in chunks ~lo:40 ~len:32;
    p_src_ip = bits_in chunks ~lo:72 ~len:32;
  }

let pp_field ppf f =
  Format.fprintf ppf "src=%a dst=%a sport=%a dport=%a proto=%a" Ternary.pp
    f.src_ip Ternary.pp f.dst_ip Ternary.pp f.src_port Ternary.pp f.dst_port
    Ternary.pp f.proto

let pp_packet ppf p =
  Format.fprintf ppf "src=%Lx dst=%Lx sport=%d dport=%d proto=%d" p.p_src_ip
    p.p_dst_ip p.p_src_port p.p_dst_port p.p_proto
