(* A ternary string is (value, mask) chunk vectors: mask bit 1 = the position
   is cared about and equals the corresponding value bit; mask bit 0 = Any.
   Invariant: value bits are 0 wherever mask is 0, and bits at positions
   >= width are 0 in both vectors.  The invariant makes equality, hashing
   and set algebra plain chunk-wise logic. *)

type t = { width : int; value : int64 array; mask : int64 array }

type bit = Zero | One | Any

let chunks_for width = (width + 63) / 64

(* Mask selecting the valid bits of the last chunk. *)
let tail_mask width =
  let r = width land 63 in
  if r = 0 then -1L else Int64.sub (Int64.shift_left 1L r) 1L

let check_invariant t =
  let n = Array.length t.value in
  assert (n = chunks_for t.width && n = Array.length t.mask);
  for i = 0 to n - 1 do
    assert (Int64.logand t.value.(i) (Int64.lognot t.mask.(i)) = 0L);
    if i = n - 1 then begin
      let tm = tail_mask t.width in
      assert (Int64.logand t.value.(i) (Int64.lognot tm) = 0L);
      assert (Int64.logand t.mask.(i) (Int64.lognot tm) = 0L)
    end
  done;
  t

let width t = t.width

let any w =
  if w <= 0 then invalid_arg "Ternary.any: width must be positive";
  { width = w; value = Array.make (chunks_for w) 0L; mask = Array.make (chunks_for w) 0L }

let exact_of_int64 ~width:w v =
  if w <= 0 || w > 64 then invalid_arg "Ternary.exact_of_int64: width out of (0,64]";
  let tm = tail_mask w in
  let value = Array.make (chunks_for w) 0L in
  let mask = Array.make (chunks_for w) 0L in
  value.(0) <- Int64.logand v tm;
  mask.(0) <- tm;
  check_invariant { width = w; value; mask }

let prefix_of_int64 ~width:w ~plen v =
  if w <= 0 || w > 64 then invalid_arg "Ternary.prefix_of_int64: width out of (0,64]";
  if plen < 0 || plen > w then invalid_arg "Ternary.prefix_of_int64: plen out of range";
  (* Care about the plen most-significant of the w positions. *)
  let care =
    if plen = 0 then 0L
    else Int64.logand (Int64.shift_left (-1L) (w - plen)) (tail_mask w)
  in
  let value = Array.make (chunks_for w) 0L in
  let mask = Array.make (chunks_for w) 0L in
  value.(0) <- Int64.logand v care;
  mask.(0) <- care;
  check_invariant { width = w; value; mask }

let get t i =
  if i < 0 || i >= t.width then invalid_arg "Ternary.get: index out of range";
  let c = i / 64 and b = i land 63 in
  if Int64.logand t.mask.(c) (Int64.shift_left 1L b) = 0L then Any
  else if Int64.logand t.value.(c) (Int64.shift_left 1L b) = 0L then Zero
  else One

let set t i bit =
  if i < 0 || i >= t.width then invalid_arg "Ternary.set: index out of range";
  let c = i / 64 and b = Int64.shift_left 1L (i land 63) in
  let value = Array.copy t.value and mask = Array.copy t.mask in
  (match bit with
  | Any ->
      value.(c) <- Int64.logand value.(c) (Int64.lognot b);
      mask.(c) <- Int64.logand mask.(c) (Int64.lognot b)
  | Zero ->
      value.(c) <- Int64.logand value.(c) (Int64.lognot b);
      mask.(c) <- Int64.logor mask.(c) b
  | One ->
      value.(c) <- Int64.logor value.(c) b;
      mask.(c) <- Int64.logor mask.(c) b);
  check_invariant { t with value; mask }

let of_string s =
  let w = String.length s in
  if w = 0 then invalid_arg "Ternary.of_string: empty string";
  let t = ref (any w) in
  String.iteri
    (fun pos ch ->
      (* Leftmost character = most significant position (w - 1 - pos). *)
      let i = w - 1 - pos in
      match ch with
      | '0' -> t := set !t i Zero
      | '1' -> t := set !t i One
      | '*' -> ()
      | _ -> invalid_arg "Ternary.of_string: expected '0', '1' or '*'")
    s;
  !t

let to_string t =
  String.init t.width (fun pos ->
      match get t (t.width - 1 - pos) with Zero -> '0' | One -> '1' | Any -> '*')

let slice t ~lo ~len =
  if lo < 0 || len <= 0 || lo + len > t.width then invalid_arg "Ternary.slice: out of range";
  let r = ref (any len) in
  for i = 0 to len - 1 do
    match get t (lo + i) with
    | Any -> ()
    | b -> r := set !r i b
  done;
  !r

let concat hi lo =
  let w = hi.width + lo.width in
  let r = ref (any w) in
  for i = 0 to lo.width - 1 do
    match get lo i with Any -> () | b -> r := set !r i b
  done;
  for i = 0 to hi.width - 1 do
    match get hi i with Any -> () | b -> r := set !r (lo.width + i) b
  done;
  !r

let is_exact t =
  let n = Array.length t.mask in
  let ok = ref true in
  for i = 0 to n - 1 do
    let expect = if i = n - 1 then tail_mask t.width else -1L in
    if t.mask.(i) <> expect then ok := false
  done;
  !ok

let popcount64 x =
  let rec go x acc = if x = 0L then acc else go (Int64.logand x (Int64.sub x 1L)) (acc + 1) in
  go x 0

let num_wildcards t =
  let cared = Array.fold_left (fun acc m -> acc + popcount64 m) 0 t.mask in
  t.width - cared

let equal a b =
  a.width = b.width
  && Array.for_all2 Int64.equal a.value b.value
  && Array.for_all2 Int64.equal a.mask b.mask

let compare a b =
  let c = Int.compare a.width b.width in
  if c <> 0 then c
  else
    let rec go i =
      if i = Array.length a.value then 0
      else
        let c = Int64.compare a.value.(i) b.value.(i) in
        if c <> 0 then c
        else
          let c = Int64.compare a.mask.(i) b.mask.(i) in
          if c <> 0 then c else go (i + 1)
    in
    go 0

let hash t =
  let h = ref (Hashtbl.hash t.width) in
  Array.iter (fun v -> h := (!h * 31) + Int64.to_int v) t.value;
  Array.iter (fun m -> h := (!h * 31) + Int64.to_int m) t.mask;
  !h land max_int

let check_same_width fname a b =
  if a.width <> b.width then invalid_arg (fname ^ ": width mismatch")

(* Disjoint iff some position is cared by both and disagrees. *)
let overlaps a b =
  check_same_width "Ternary.overlaps" a b;
  let n = Array.length a.value in
  let ok = ref true in
  for i = 0 to n - 1 do
    let both = Int64.logand a.mask.(i) b.mask.(i) in
    let diff = Int64.logxor a.value.(i) b.value.(i) in
    if Int64.logand both diff <> 0L then ok := false
  done;
  !ok

(* a subsumes b iff a's cared positions are a subset of b's and agree there. *)
let subsumes a b =
  check_same_width "Ternary.subsumes" a b;
  let n = Array.length a.value in
  let ok = ref true in
  for i = 0 to n - 1 do
    if Int64.logand a.mask.(i) (Int64.lognot b.mask.(i)) <> 0L then ok := false;
    let diff = Int64.logxor a.value.(i) b.value.(i) in
    if Int64.logand a.mask.(i) diff <> 0L then ok := false
  done;
  !ok

let intersect a b =
  check_same_width "Ternary.intersect" a b;
  if not (overlaps a b) then None
  else
    let n = Array.length a.value in
    let value = Array.make n 0L and mask = Array.make n 0L in
    for i = 0 to n - 1 do
      mask.(i) <- Int64.logor a.mask.(i) b.mask.(i);
      value.(i) <- Int64.logor a.value.(i) b.value.(i)
    done;
    Some (check_invariant { width = a.width; value; mask })

let matches_value t v =
  let n = Array.length t.value in
  if Array.length v < n then invalid_arg "Ternary.matches_value: value too short";
  let ok = ref true in
  for i = 0 to n - 1 do
    let relevant = if i = n - 1 then tail_mask t.width else -1L in
    let diff = Int64.logxor t.value.(i) (Int64.logand v.(i) relevant) in
    if Int64.logand t.mask.(i) diff <> 0L then ok := false
  done;
  !ok

let random rng ~width:w ~wildcard_prob =
  let t = ref (any w) in
  for i = 0 to w - 1 do
    if not (Fr_prng.Rng.chance rng wildcard_prob) then
      t := set !t i (if Fr_prng.Rng.bool rng then One else Zero)
  done;
  !t

let random_exact_in rng t =
  let n = Array.length t.value in
  let v = Array.make n 0L in
  for i = 0 to n - 1 do
    let relevant = if i = n - 1 then tail_mask t.width else -1L in
    let rand = Int64.logand (Fr_prng.Rng.bits64 rng) relevant in
    (* Cared bits come from the pattern, free bits from the random draw. *)
    v.(i) <-
      Int64.logor
        (Int64.logand t.mask.(i) t.value.(i))
        (Int64.logand (Int64.lognot t.mask.(i)) rand)
  done;
  v

let pp ppf t = Format.pp_print_string ppf (to_string t)

let unsafe_chunks t = (t.value, t.mask)
