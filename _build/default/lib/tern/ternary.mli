(** Ternary bit strings — the TCAM match-field representation.

    A ternary string of width [w] assigns each of the [w] bit positions one
    of [0], [1] or [*] (don't-care).  It denotes the set of exact [w]-bit
    strings obtained by substituting [*] freely; two TCAM entries conflict
    exactly when their denoted sets intersect, which is what the dependency
    graph is built from.

    Internally a ternary string is a pair of bit vectors (value, care-mask)
    packed into [int64] chunks; all set operations are O(w/64). *)

type t

type bit =
  | Zero
  | One
  | Any  (** don't care *)

val width : t -> int
(** Number of bit positions. *)

val any : int -> t
(** [any w] is the all-wildcard string of width [w] (matches everything). *)

val exact_of_int64 : width:int -> int64 -> t
(** [exact_of_int64 ~width v] is the fully-specified string whose bits are
    the low [width] bits of [v], bit 0 being the least significant.
    Requires [width <= 64]. *)

val prefix_of_int64 : width:int -> plen:int -> int64 -> t
(** [prefix_of_int64 ~width ~plen v] cares only about the [plen] MOST
    significant of the [width] positions — the usual IP-prefix shape.
    The low [width - plen] positions are [Any]. *)

val get : t -> int -> bit
(** [get t i] is the bit at position [i] (0 = least significant).
    @raise Invalid_argument if [i] is out of range. *)

val set : t -> int -> bit -> t
(** Functional update of one position. *)

val of_string : string -> t
(** [of_string s] parses ['0'], ['1'], ['*'] characters; the LEFTMOST
    character is the most significant bit, as in the paper's figures
    (e.g. ["C*A"]-style examples map to ["1*0"]...).
    @raise Invalid_argument on other characters or an empty string. *)

val to_string : t -> string
(** Inverse of {!of_string} (most significant bit first). *)

val concat : t -> t -> t
(** [concat hi lo] glues two strings; [hi]'s positions become the most
    significant part of the result.  Used to assemble multi-field
    OpenFlow match fields. *)

val slice : t -> lo:int -> len:int -> t
(** [slice t ~lo ~len] extracts positions [lo .. lo+len-1]. *)

val is_exact : t -> bool
(** No [Any] positions. *)

val num_wildcards : t -> int
(** Number of [Any] positions. *)

val equal : t -> t -> bool
(** Structural equality (same width, same bits). *)

val compare : t -> t -> int
(** Total order consistent with {!equal}. *)

val hash : t -> int

val overlaps : t -> t -> bool
(** [overlaps a b] — do the denoted sets intersect?  True iff no position
    has [Zero] in one and [One] in the other.  Widths must agree.
    @raise Invalid_argument on width mismatch. *)

val subsumes : t -> t -> bool
(** [subsumes a b] — is every string matched by [b] also matched by [a]?
    I.e. [a] is a (non-strict) generalisation of [b]. *)

val intersect : t -> t -> t option
(** [intersect a b] is the ternary string denoting the intersection of the
    two sets, or [None] if they are disjoint. *)

val matches_value : t -> int64 array -> bool
(** [matches_value t v] — does the exact bit string [v] (packed like the
    internal chunks, bit 0 = LSB of chunk 0) belong to [t]'s set?  Only the
    low [width t] bits of [v] are consulted. *)

val random : Fr_prng.Rng.t -> width:int -> wildcard_prob:float -> t
(** Random ternary string; each position is independently [Any] with
    probability [wildcard_prob], else a fair [Zero]/[One]. *)

val random_exact_in : Fr_prng.Rng.t -> t -> int64 array
(** [random_exact_in rng t] samples a uniform member of [t]'s denoted set,
    returned as packed chunks suitable for {!matches_value}. *)

val pp : Format.formatter -> t -> unit
(** Prints {!to_string}. *)

(**/**)

val unsafe_chunks : t -> int64 array * int64 array
(** Internal: the live (value, care-mask) chunk vectors, {e not} copies —
    callers must never mutate them.  Exists for the policy compiler's
    pairwise-overlap loop, which tests hundreds of millions of pairs and
    cannot afford per-call indirection. *)
