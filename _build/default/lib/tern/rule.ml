type action = Forward of int | Drop | Controller

type t = { id : int; field : Ternary.t; action : action; priority : int }

let make ~id ~field ~action ~priority = { id; field; action; priority }

let overlaps a b = Ternary.overlaps a.field b.field
let subsumes a b = Ternary.subsumes a.field b.field

let matches_packet r p = Ternary.matches_value r.field (Header.packet_bits p)

let equal_action a b =
  match (a, b) with
  | Forward p, Forward q -> p = q
  | Drop, Drop -> true
  | Controller, Controller -> true
  | (Forward _ | Drop | Controller), _ -> false

let conflicts a b = overlaps a b && not (equal_action a.action b.action)

let pp_action ppf = function
  | Forward p -> Format.fprintf ppf "fwd(%d)" p
  | Drop -> Format.pp_print_string ppf "drop"
  | Controller -> Format.pp_print_string ppf "ctrl"

let pp ppf r =
  Format.fprintf ppf "#%d[prio=%d %a -> %a]" r.id r.priority Ternary.pp r.field
    pp_action r.action

module Id_set = Set.Make (Int)
module Id_map = Map.Make (Int)
