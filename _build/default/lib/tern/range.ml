(* Greedy minimal prefix cover: repeatedly take the largest aligned block
   starting at [lo] that does not overshoot [hi].  Standard result: this is
   minimal and produces at most 2w - 2 prefixes. *)

let check ~width ~lo ~hi =
  if width <= 0 || width > 62 then invalid_arg "Range: width out of (0,62]";
  if lo < 0 || lo > hi || hi >= 1 lsl width then
    invalid_arg "Range: interval out of bounds"

let blocks ~width ~lo ~hi f =
  check ~width ~lo ~hi;
  let lo = ref lo in
  while !lo <= hi do
    (* Largest 2^k block aligned at lo and fitting in [lo, hi]. *)
    let k = ref 0 in
    let fits k = !lo land ((1 lsl k) - 1) = 0 && !lo + (1 lsl k) - 1 <= hi in
    while !k < width && fits (!k + 1) do
      incr k
    done;
    f ~base:!lo ~bits:!k;
    lo := !lo + (1 lsl !k)
  done

let expand ~width ~lo ~hi =
  let acc = ref [] in
  blocks ~width ~lo ~hi (fun ~base ~bits ->
      acc :=
        Ternary.prefix_of_int64 ~width ~plen:(width - bits) (Int64.of_int base)
        :: !acc);
  List.rev !acc

let cover_size ~width ~lo ~hi =
  let n = ref 0 in
  blocks ~width ~lo ~hi (fun ~base:_ ~bits:_ -> incr n);
  !n

let max_cover_size ~width =
  if width <= 0 then invalid_arg "Range: width out of (0,62]"
  else if width = 1 then 1
  else (2 * width) - 2

let expand_five_tuple ?src_range ?dst_range (spec : Header.field_spec) =
  let cover range current =
    match range with
    | None -> [ current ]
    | Some (lo, hi) -> expand ~width:16 ~lo ~hi
  in
  let srcs = cover src_range spec.Header.src_port in
  let dsts = cover dst_range spec.Header.dst_port in
  List.concat_map
    (fun s ->
      List.map (fun d -> { spec with Header.src_port = s; dst_port = d }) dsts)
    srcs
