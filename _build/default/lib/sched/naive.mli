(** The naive priority-based scheduler (the paper's "Naïve" baseline).

    This reconstructs what commodity OpenFlow firmware does (§II.B, §VI.A):
    entries carry {e dense} integer priorities (their rank), the TCAM
    stores entries sorted by priority, and inserting means

    + an O(n) scan to locate the position implied by the new entry's
      priority,
    + shifting every entry between that position and the nearest free slot
      by one — like a step of insertion sort, n/2 movements on average
      when the free space pools at one end — where the firmware
      {e re-locates and re-prioritises each moved entry individually}
      (another O(n) scan per movement: the paper's "assign a new priority
      for all entries that need to be moved"),
    + bumping the rank of everything above the insertion point.

    Per-update cost is therefore O(n^2) — which is what makes the paper's
    naive baseline "unable to finish within half an hour" on 20k/40k
    tables, a growth curve this reconstruction reproduces.  Deletion
    erases in place (one op), leaving a hole that later insertions shift
    toward.

    Correctness note: priorities are a linearisation of the dependency
    order (the new entry's rank is picked strictly between its dependents'
    maximum and its dependencies' minimum), so the dependency invariant
    holds by construction. *)

type state

val create : tcam:Fr_tcam.Tcam.t -> state
(** The TCAM's current contents are adopted as the initial table; their
    address order defines the initial ranks. *)

val algo : state -> Algo.t

val priority_of : state -> int -> int option
(** Exposed for tests: the rank currently assigned to an entry. *)

val renumber_count : state -> int
(** How many bulk re-prioritisation passes (insertions that bumped at
    least one existing entry's rank) have happened. *)
