module Graph = Fr_dag.Graph
module Tcam = Fr_tcam.Tcam

type t = Up | Down

let to_string = function Up -> "up" | Down -> "down"

let min_dep_addr g tcam id =
  Graph.fold_deps g id ~init:None ~f:(fun acc v ->
      match Tcam.addr_of tcam v with
      | None -> acc
      | Some a -> (
          match acc with Some b when b <= a -> acc | Some _ | None -> Some a))

let max_dependent_addr g tcam id =
  let best = ref None in
  Graph.iter_dependents g id (fun x ->
      match Tcam.addr_of tcam x with
      | None -> ()
      | Some a -> (
          match !best with
          | Some b when b >= a -> ()
          | Some _ | None -> best := Some a));
  !best

let next_hop dir g tcam id =
  match dir with
  | Up -> min_dep_addr g tcam id
  | Down -> max_dependent_addr g tcam id

let bound dir g tcam id =
  match dir with
  | Up -> (
      match min_dep_addr g tcam id with
      | Some a -> a
      | None -> Tcam.size tcam - 1)
  | Down -> ( match max_dependent_addr g tcam id with Some a -> a | None -> 0)

let propagation_targets dir g id f =
  match dir with
  | Up -> Graph.iter_dependents g id f
  | Down -> Graph.iter_deps g id f
