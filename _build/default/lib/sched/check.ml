module Tcam = Fr_tcam.Tcam
module Op = Fr_tcam.Op

let sequence graph tcam ops =
  let sim = Tcam.copy tcam in
  let rec go i = function
    | [] -> Ok ()
    | op :: rest -> (
        let describe () = Format.asprintf "%a" Op.pp op in
        match op with
        | Op.Insert { rule_id; addr } -> (
            (match Tcam.read sim addr with
            | Tcam.Used id when id <> rule_id ->
                Error
                  (Printf.sprintf "op %d %s overwrites live entry %d" i
                     (describe ()) id)
            | Tcam.Used _ | Tcam.Free -> Ok ())
            |> function
            | Error _ as e -> e
            | Ok () -> (
                Tcam.write sim ~rule_id ~addr;
                match Tcam.check_dag_order sim graph with
                | Ok () -> go (i + 1) rest
                | Error msg ->
                    Error
                      (Printf.sprintf "op %d %s breaks dependency order: %s" i
                         (describe ()) msg)))
        | Op.Delete { addr } -> (
            Tcam.erase sim ~addr;
            match Tcam.check_dag_order sim graph with
            | Ok () -> go (i + 1) rest
            | Error msg ->
                Error
                  (Printf.sprintf "op %d %s breaks dependency order: %s" i
                     (describe ()) msg)))
  in
  go 0 ops

let apply_verified graph tcam ops =
  match sequence graph tcam ops with
  | Ok () ->
      Tcam.apply_sequence tcam ops;
      Ok ()
  | Error _ as e -> e
