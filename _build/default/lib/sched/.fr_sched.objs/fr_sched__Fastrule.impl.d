lib/sched/fastrule.ml: Algo Dir Fr_dag Fr_tcam List Printf Store
