lib/sched/store.ml: Array Dir Fr_bitree Fr_dag Fr_tcam Hashtbl Int List Metric Queue
