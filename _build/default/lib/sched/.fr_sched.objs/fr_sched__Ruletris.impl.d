lib/sched/ruletris.ml: Algo Array Dir Fr_tcam Printf
