lib/sched/naive.ml: Algo Fr_tcam Hashtbl List Printf
