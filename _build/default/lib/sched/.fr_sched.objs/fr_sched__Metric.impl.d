lib/sched/metric.ml: Dir Fr_tcam List
