lib/sched/fastrule.mli: Algo Dir Fr_dag Fr_tcam Store
