lib/sched/check.mli: Fr_dag Fr_tcam
