lib/sched/algo.ml: Fr_tcam Printf
