lib/sched/algo.mli: Fr_tcam
