lib/sched/store.mli: Dir Fr_dag Fr_tcam
