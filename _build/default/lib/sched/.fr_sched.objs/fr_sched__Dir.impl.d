lib/sched/dir.ml: Fr_dag Fr_tcam
