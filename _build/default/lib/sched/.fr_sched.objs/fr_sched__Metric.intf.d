lib/sched/metric.mli: Dir Fr_dag Fr_tcam
