lib/sched/dir.mli: Fr_dag Fr_tcam
