lib/sched/ruletris.mli: Algo Fr_dag Fr_tcam
