lib/sched/naive.mli: Algo Fr_tcam
