lib/sched/separated.ml: Algo Dir Fr_dag Fr_tcam List Printf Store
