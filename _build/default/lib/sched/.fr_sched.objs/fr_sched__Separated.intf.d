lib/sched/separated.mli: Algo Fr_dag Fr_tcam Store
