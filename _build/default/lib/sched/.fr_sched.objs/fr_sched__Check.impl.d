lib/sched/check.ml: Format Fr_tcam Printf
