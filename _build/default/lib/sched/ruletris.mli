(** The RuleTris TCAM update scheduler (Wen et al., ICDCS 2016) —
    reconstructed as FastRule's state-of-the-art baseline.

    RuleTris computes a {e movement-minimal} update sequence by dynamic
    programming: [cost A] is the cheapest number of writes that frees
    address [A] (0 when already free; otherwise one plus the cheapest cost
    over the occupant's legal displacement window), and the insertion picks
    the cheapest address in the candidate window.  Because every entry's
    displacement window can span up to the whole table, the DP is O(n^2)
    worst case, and — the trait FastRule's §VI.D criticises — every update
    pays a full-table initialisation pass (rebuilding the displacement
    windows, O(n + m)) before any DP work starts.

    Our reconstruction keeps both traits (per-update O(n) initialisation,
    window-scan DP) while memoising sub-problems, and returns genuinely
    optimal sequences — which doubles as an optimality yardstick for the
    greedy in the test suite. *)

val make : graph:Fr_dag.Graph.t -> tcam:Fr_tcam.Tcam.t -> Algo.t
(** Deletion erases in place (one op), as in the original layout. *)

val min_cost_in_window :
  graph:Fr_dag.Graph.t -> Fr_tcam.Tcam.t -> lo:int -> hi:int -> int option
(** Test hook: the optimal number of writes needed to insert an
    (unconstrained-above) entry whose candidate window is [\[lo, hi\]];
    [None] if impossible (no reachable free slot).  The cost includes the
    write of the new entry itself. *)
