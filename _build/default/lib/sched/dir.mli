(** Displacement direction.

    The original layout keeps its free space on top, so displacement chains
    cascade {e upward} and an entry's movement is bounded by the nearest
    entry it {e depends on}.  The separated layout's top region pools its
    free space {e below}, so its chains cascade downward, bounded by the
    nearest {e dependent}.  Every direction-sensitive computation in the
    schedulers (movement bounds, chain metrics, tie-breaking) goes through
    this module so the two cases stay exact mirrors. *)

type t =
  | Up  (** free space above; constraint = nearest dependency *)
  | Down  (** free space below; constraint = nearest dependent *)

val to_string : t -> string

val bound : t -> Fr_dag.Graph.t -> Fr_tcam.Tcam.t -> int -> int
(** [bound dir g tcam id] — the farthest address entry [id] may move to in
    direction [dir] while respecting its edges; the bound is the nearest
    constraining entry's {e own} address, because the scheduler may move
    [id] onto it by displacing that entry one step further:
    - [Up]: the minimum address among [id]'s dependencies present in the
      TCAM, or [size - 1] if it depends on nothing — the displacement
      window is [(current, bound\]];
    - [Down]: the maximum address among [id]'s present dependents, or [0]
      when nobody depends on it — the window is [\[bound, current)]. *)

val next_hop : t -> Fr_dag.Graph.t -> Fr_tcam.Tcam.t -> int -> int option
(** [next_hop dir g tcam id] — the address of the {e nearest constraining
    entry} in direction [dir] ([Up]: nearest dependency above, [Down]:
    nearest dependent below), or [None] if unconstrained.  This is the step
    function of the chain metric (Definition 1). *)

val propagation_targets : t -> Fr_dag.Graph.t -> int -> (int -> unit) -> unit
(** Iterate the nodes whose chain metric reads this node's metric: the
    dependents for [Up], the dependencies for [Down]. *)
