(** FastRule on the separated layout (§V): entries split into a bottom and
    a top region with the free space pooled in the middle.

    Insertion (§V.1): when the candidate window lies entirely inside one
    region, the greedy runs there — upward in the bottom region, downward
    in the top region — with displacement windows {e clamped at the
    region's middle edge}, so chains spill exactly one slot into the middle
    pool and the region grows by one.  When the window straddles the middle
    the entry lands directly on a middle edge slot (zero movements), on the
    side currently holding {e fewer} entries (the paper's balance rule).
    If the middle pool is exhausted, the layout has degenerated and the
    scheduler falls back to the plain upward greedy over the whole window.

    Deletion (§V.2):
    - {e dirty} ("FR-SD"): erase in place — one op, no movements, but the
      hole is stranded inside its region;
    - {e balance} ("FR-SB"): erase, then migrate the hole to the region's
      middle edge by moving entries into it (nearest-first, preferring a
      single far jump when legal), returning the slot to the shared pool
      at the cost of extra TCAM movements.  This reproduces the paper's
      finding that FR-SB pays for deletions what it saves on insertions. *)

type delete_mode = Dirty | Balance

val delete_mode_to_string : delete_mode -> string

type state

val create :
  ?backend:Store.backend ->
  delete_mode:delete_mode ->
  graph:Fr_dag.Graph.t ->
  tcam:Fr_tcam.Tcam.t ->
  unit ->
  state
(** The TCAM must have been populated by
    [Layout.place Layout.Separated ...] (or be empty); the regions are
    inferred from its current image. *)

val algo : state -> Algo.t
(** Name is ["fr-sd/<backend>"] or ["fr-sb/<backend>"]. *)

val regions : state -> Fr_tcam.Layout.separated_regions
(** Live region bookkeeping (for tests and reporting). *)

val up_store : state -> Store.t
val down_store : state -> Store.t
(** The two live metric stores (for tests). *)
