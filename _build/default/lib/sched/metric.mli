(** The address metric [M(A)] (Definition 1).

    [M(A)] is the number of nodes on the chain that starts at the entry
    occupying [A] and repeatedly hops to the {e nearest constraining
    entry} in the displacement direction (the nearest dependency when
    chains cascade upward), ending at an unconstrained entry.  Free
    addresses have metric 0, occupied ones at least 1 — which is why the
    greedy, always picking the minimum, runs straight into free space
    whenever the candidate window contains one (Propositions 1–2).

    [M(A)] upper-bounds the number of movements the greedy will still need
    after placing an entry at [A]; picking the minimum is the paper's
    locally-optimal choice. *)

val compute : Dir.t -> Fr_dag.Graph.t -> Fr_tcam.Tcam.t -> addr:int -> int
(** Walk the chain by DFS from the occupant of [addr]; O(chain length x
    out-degree).  0 for a free address. *)

val path : Dir.t -> Fr_dag.Graph.t -> Fr_tcam.Tcam.t -> addr:int -> int list
(** The chain's address list [P(A)] itself (empty for a free address);
    [compute] equals its length.  Used by tests and the worked-example
    replays. *)
