module Tcam = Fr_tcam.Tcam

let path dir g tcam ~addr =
  match Tcam.read tcam addr with
  | Tcam.Free -> []
  | Tcam.Used id ->
      let rec go id a acc =
        match Dir.next_hop dir g tcam id with
        | None -> List.rev (a :: acc)
        | Some a' -> (
            match Tcam.read tcam a' with
            | Tcam.Free -> List.rev (a :: acc)
            | Tcam.Used id' -> go id' a' (a :: acc))
      in
      go id addr []

let compute dir g tcam ~addr =
  match Tcam.read tcam addr with
  | Tcam.Free -> 0
  | Tcam.Used id ->
      let rec go id m =
        match Dir.next_hop dir g tcam id with
        | None -> m
        | Some a' -> (
            match Tcam.read tcam a' with
            | Tcam.Free -> m
            | Tcam.Used id' -> go id' (m + 1))
      in
      go id 1
