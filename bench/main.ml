(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md §5 for the experiment index), plus the
   ablations DESIGN.md §7 calls out and Bechamel micro-benchmarks of the
   core data-structure operations.

   Usage:  main.exe [--quick] [table2] [fig7] [fig8] [fig9] [ablation]
           [micro] [ctrl] [conform] [resil] [cache] [net] [degrade] [plane]

   With no section argument every section runs.  --quick restricts the
   sweeps to sizes <= 4000 (a couple of minutes); the full run covers the
   paper's 250..40k sizes. *)

open Fastrule

let seed = 42
let paper_sizes = [ 250; 500; 1_000; 2_000; 4_000; 10_000; 20_000; 40_000 ]
let quick = ref false
let sizes () = if !quick then [ 250; 500; 1_000; 2_000; 4_000 ] else paper_sizes

let fig9_sizes () = if !quick then [ 2_000 ] else [ 2_000; 10_000 ]

let backend = Store.Bit_backend

(* ------------------------------------------------------------------ *)
(* Shared experiment execution, memoised so fig7/fig8/fig9 reuse runs. *)

let row_memo : (Dataset.kind * int * bool, Experiment.row list) Hashtbl.t =
  Hashtbl.create 64

let rows_for kind n with_deletes =
  match Hashtbl.find_opt row_memo (kind, n, with_deletes) with
  | Some rows -> rows
  | None ->
      let spec =
        {
          Experiment.kind;
          n;
          updates = Experiment.updates_for n;
          with_deletes;
          seed;
        }
      in
      let rows =
        Experiment.run_spec spec ~algos:(Firmware.standard_algos backend)
      in
      Hashtbl.replace row_memo (kind, n, with_deletes) rows;
      rows

let find_algo rows name =
  List.find_opt (fun (r : Experiment.row) -> r.Experiment.algo = name) rows

(* A figure panel: one line per algorithm, one column per size. *)
let print_series ~metric ~label kinds_modes algos =
  List.iter
    (fun (kind, mode) ->
      Format.printf "@.-- %s, %s (%s; columns: %s) --@."
        (String.uppercase_ascii (Dataset.to_string kind))
        (if mode then "insert+delete" else "insert-only")
        label
        (String.concat " " (List.map string_of_int (sizes ())));
      List.iter
        (fun algo ->
          Format.printf "%-10s" algo;
          List.iter
            (fun n ->
              let rows = rows_for kind n mode in
              match find_algo rows algo with
              | None -> Format.printf " %10s" "-"
              | Some r -> Format.printf " %10.4f" (metric r))
            (sizes ());
          Format.printf "@.")
        algos)
    kinds_modes

(* ------------------------------------------------------------------ *)
(* Table II *)

let table2 () =
  Report.print_header
    "Table II: data-set characteristics (n, m, c_max, c_avg, d_in)";
  let entries =
    List.concat_map
      (fun kind ->
        List.map
          (fun n ->
            let table = Experiment.table_cached kind ~seed ~n in
            (kind, n, Dataset.stats table))
          (sizes ()))
      Dataset.all
  in
  Report.print_table2 entries;
  Format.printf
    "@.Paper bands: ACL c_avg 1.0-1.1 / c_max 2-6; FW c_avg 1.0-1.6 / c_max \
     3-15; ROUTE c_avg 1.1-1.7 / c_max 5-13.@."

(* ------------------------------------------------------------------ *)
(* Fig. 7: firmware time *)

let fig7 () =
  Report.print_header
    "Fig. 7: average firmware time per update (ms) - ACL4/FW5/ROUTE";
  (* Panels (a-c): insert-only; FR-SD omitted (identical to FR-SB without
     deletes), like the paper. *)
  print_series
    ~metric:(fun r -> r.Experiment.fw.Measure.mean)
    ~label:"firmware mean ms"
    (List.map (fun kind -> (kind, false)) [ Dataset.ACL4; Dataset.FW5; Dataset.ROUTE ])
    [ "naive"; "ruletris"; "fr-o"; "fr-sb" ];
  (* Panels (d-f): insert+delete; all five algorithms. *)
  print_series
    ~metric:(fun r -> r.Experiment.fw.Measure.mean)
    ~label:"firmware mean ms"
    (List.map (fun kind -> (kind, true)) [ Dataset.ACL4; Dataset.FW5; Dataset.ROUTE ])
    [ "naive"; "ruletris"; "fr-o"; "fr-sd"; "fr-sb" ];
  (* The error bars of the paper's figure: maxima. *)
  print_series
    ~metric:(fun r -> r.Experiment.fw.Measure.max)
    ~label:"firmware MAX ms"
    [ (Dataset.ACL4, false); (Dataset.ACL4, true) ]
    [ "naive"; "ruletris"; "fr-o"; "fr-sd"; "fr-sb" ];
  (* Headline claim: FastRule vs RuleTris at 1k. *)
  match
    ( find_algo (rows_for Dataset.ACL4 1_000 false) "ruletris",
      find_algo (rows_for Dataset.ACL4 1_000 false) "fr-o" )
  with
  | Some rt, Some fr when fr.Experiment.fw.Measure.mean > 0.0 ->
      Format.printf
        "@.Headline: FR-O firmware %.4f ms vs RuleTris %.4f ms at 1k (ACL4, \
         insert-only) -> %.0fx speedup (paper: ~100x)@."
        fr.Experiment.fw.Measure.mean rt.Experiment.fw.Measure.mean
        (rt.Experiment.fw.Measure.mean /. fr.Experiment.fw.Measure.mean)
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Fig. 8: TCAM update time *)

let fig8 () =
  Report.print_header
    "Fig. 8: average TCAM update time per update (ms, 0.6 ms/op model) - \
     ROUTE & FW5, insert+delete";
  print_series
    ~metric:(fun r -> r.Experiment.tcam_avg_ms)
    ~label:"tcam avg ms"
    [ (Dataset.ROUTE, true); (Dataset.FW5, true) ]
    [ "naive"; "ruletris"; "fr-o"; "fr-sd"; "fr-sb" ];
  Format.printf
    "@.Expected shape (paper): FR-SB/FR-O/RuleTris comparable; FR-SD \
     fastest; FR-SB pays balance-delete movements; Naive far worst.@."

(* ------------------------------------------------------------------ *)
(* Fig. 9: layouts and delete behaviours across all table types *)

let fig9 () =
  Report.print_header
    "Fig. 9: firmware time across table types / layouts / delete behaviours";
  List.iter
    (fun n ->
      List.iter
        (fun with_deletes ->
          Format.printf "@.-- n=%d, %s (firmware mean ms) --@." n
            (if with_deletes then "insert+delete" else "insert-only");
          let algos =
            if with_deletes then [ "fr-o"; "fr-sd"; "fr-sb" ]
            else [ "fr-o"; "fr-sb" ]
          in
          Format.printf "%-10s" "type";
          List.iter (fun a -> Format.printf " %12s" a) algos;
          Format.printf " %10s@." "c_avg";
          List.iter
            (fun kind ->
              let rows = rows_for kind n with_deletes in
              let table = Experiment.table_cached kind ~seed ~n in
              let stats = Dataset.stats table in
              Format.printf "%-10s" (Dataset.to_string kind);
              List.iter
                (fun a ->
                  match find_algo rows a with
                  | None -> Format.printf " %12s" "-"
                  | Some r -> Format.printf " %12.5f" r.Experiment.fw.Measure.mean)
                algos;
              Format.printf " %10.2f@." stats.Fr_dag.Stats.c_avg)
            Dataset.all)
        [ false; true ])
    (fig9_sizes ())

(* ------------------------------------------------------------------ *)
(* Ablations *)

let ablation () =
  Report.print_header
    "Ablation A (SIII): metric back-ends (on-demand vs array vs BIT), ROUTE \
     insert-only, firmware mean ms";
  let ab_sizes =
    if !quick then [ 1_000; 4_000 ] else [ 1_000; 4_000; 10_000; 40_000 ]
  in
  Format.printf "%-12s" "backend";
  List.iter (fun n -> Format.printf " %10d" n) ab_sizes;
  Format.printf "@.";
  List.iter
    (fun b ->
      Format.printf "%-12s" (Store.backend_to_string b);
      List.iter
        (fun n ->
          let table = Experiment.table_cached Dataset.ROUTE ~seed ~n in
          let spec =
            {
              Experiment.kind = Dataset.ROUTE;
              n;
              updates = Experiment.updates_for n;
              with_deletes = false;
              seed;
            }
          in
          let stream = Experiment.stream_for spec in
          let row = Experiment.run_one ~table ~stream (Firmware.FR_O b) in
          Format.printf " %10.5f" row.Experiment.fw.Measure.mean)
        ab_sizes;
      Format.printf "@.")
    Store.all_backends;
  Report.print_header
    "Ablation B (SV): interleaved layout - one free slot every K entries, \
     ACL4 2k insert-only";
  let table = Experiment.table_cached Dataset.ACL4 ~seed ~n:2_000 in
  let spec =
    {
      Experiment.kind = Dataset.ACL4;
      n = 2_000;
      updates = Experiment.updates_for 2_000;
      with_deletes = false;
      seed;
    }
  in
  let stream = Experiment.stream_for spec in
  Format.printf "%-16s %12s %12s %10s@." "layout" "fw-mean(ms)" "tcam-avg(ms)"
    "moves";
  List.iter
    (fun layout ->
      let row =
        Experiment.run_one ~layout_override:layout ~table ~stream
          (Firmware.FR_O backend)
      in
      Format.printf "%-16s %12.5f %12.4f %10d@." (Layout.to_string layout)
        row.Experiment.fw.Measure.mean row.Experiment.tcam_avg_ms
        row.Experiment.moves)
    [
      Layout.Original;
      Layout.Interleaved 8;
      Layout.Interleaved 4;
      Layout.Interleaved 2;
      Layout.Interleaved 1;
    ];
  Report.print_header
    "Ablation C: control-loop sojourn time (queue simulation), ROUTE 2k \
     insert+delete, Poisson arrivals";
  let table = Experiment.table_cached Dataset.ROUTE ~seed ~n:2_000 in
  let spec =
    {
      Experiment.kind = Dataset.ROUTE;
      n = 2_000;
      updates = Experiment.updates_for 2_000;
      with_deletes = true;
      seed;
    }
  in
  let stream = Experiment.stream_for spec in
  Format.printf "%-10s %12s | %18s %18s@." "algo" "sat.rate(/s)"
    "p99 sojourn @400/s" "p99 sojourn @1200/s";
  List.iter
    (fun kind ->
      let cap = match kind with Firmware.Naive -> Some 60 | _ -> None in
      let n_upd = Option.value cap ~default:(List.length stream) in
      let run =
        Firmware.create kind ~table ~tcam_size:(3 * 2_000) ()
      in
      let capped = List.filteri (fun i _ -> i < n_upd) stream in
      ignore (Firmware.exec_all run capped);
      let svc = Queue_sim.service_times_of_run run in
      let sojourn rate =
        let r =
          Queue_sim.simulate (Rng.create ~seed:4242) ~service_ms:svc
            ~arrival:(Queue_sim.Poisson rate) ~count:3_000 ()
        in
        r.Queue_sim.p99_sojourn_ms
      in
      let sat = Queue_sim.saturation_rate ~service_ms:svc in
      let show rate =
        if sat <= rate then "(saturated)"
        else Printf.sprintf "%.2f ms" (sojourn rate)
      in
      Format.printf "%-10s %12.0f | %18s %18s@."
        (Firmware.algo_kind_name kind) sat (show 400.0) (show 1200.0))
    (Firmware.standard_algos backend);
  Report.print_header
    "Ablation D: compiled-dependency updates (agent path: policy compiler \
     + scheduler per insertion), FW5";
  Format.printf "%-8s %14s %14s %12s@." "n" "add fw (ms)" "tcam avg (ms)"
    "moves/add";
  List.iter
    (fun n ->
      let rules = Dataset.generate Dataset.FW5 ~seed ~n:(2 * n) in
      let initial = Array.sub rules 0 n in
      let agent = Agent.of_rules ~capacity:(3 * n) initial in
      let fw0 = Agent.firmware_ms_total agent in
      let added = ref 0 in
      for i = n to (2 * n) - 1 do
        match Agent.apply agent (Agent.Add rules.(i)) with
        | Ok () -> incr added
        | Error _ -> ()
      done;
      let per_add =
        (Agent.firmware_ms_total agent -. fw0) /. float_of_int (max 1 !added)
      in
      Format.printf "%-8d %14.4f %14.4f %12.2f@." n per_add
        (Agent.tcam_ms_total agent /. float_of_int (max 1 !added))
        (float_of_int (Tcam.moves_issued (Agent.tcam agent))
        /. float_of_int (max 1 !added)))
    (if !quick then [ 500; 2_000 ] else [ 500; 2_000; 8_000 ])

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks *)

let micro () =
  Report.print_header
    "Micro-benchmarks (Bechamel): per-operation cost of the core pieces";
  let open Bechamel in
  let n = 4096 in
  let rng = Rng.create ~seed in
  let mt = Min_tree.create n ~init:8 in
  for i = 0 to n - 1 do
    Min_tree.set mt i (Rng.int rng 64)
  done;
  let arr = Min_tree.to_array mt in
  let fs = Fenwick_sum.create n in
  (* A mid-size synthetic table for metric/scheduler micro-costs. *)
  let table = Experiment.table_cached Dataset.FW5 ~seed ~n:2_000 in
  let tcam2 =
    Layout.place Layout.Original ~tcam_size:4_096 ~order:table.Dataset.order
  in
  let graph2 = Graph.copy table.Dataset.graph in
  let fr = Greedy.create ~backend ~graph:graph2 ~tcam:tcam2 () in
  let counter = ref 0 in
  let tests =
    Test.make_grouped ~name:"fastrule"
      [
        Test.make ~name:"min_tree.set (log^2 n)"
          (Staged.stage (fun () ->
               incr counter;
               Min_tree.set mt (!counter * 37 mod n) (!counter mod 64)));
        Test.make ~name:"min_tree.min_in (log n)"
          (Staged.stage (fun () -> ignore (Min_tree.min_in mt ~lo:17 ~hi:(n - 19))));
        Test.make ~name:"array scan min (n)"
          (Staged.stage (fun () ->
               let best = ref max_int in
               for i = 17 to n - 19 do
                 if arr.(i) < !best then best := arr.(i)
               done;
               ignore !best));
        Test.make ~name:"fenwick_sum.add"
          (Staged.stage (fun () ->
               incr counter;
               Fenwick_sum.add fs (!counter * 53 mod n) 1));
        Test.make ~name:"metric chain walk (c_avg)"
          (Staged.stage (fun () ->
               incr counter;
               ignore
                 (Metric.compute Dir.Up graph2 tcam2 ~addr:(!counter * 97 mod 2_000))));
        Test.make ~name:"store.min_in over full table"
          (Staged.stage (fun () ->
               ignore (Store.min_in (Greedy.store fr) ~lo:0 ~hi:4_095)));
      ]
  in
  let cfg = Benchmark.cfg ~limit:2_000 ~quota:(Time.second 0.4) () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let res = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let entries =
    Hashtbl.fold
      (fun name est acc ->
        let ns =
          match Analyze.OLS.estimates est with Some (v :: _) -> v | _ -> nan
        in
        (name, ns) :: acc)
      res []
  in
  List.iter
    (fun (name, ns) -> Format.printf "%-45s %12.1f ns/op@." name ns)
    (List.sort compare entries)

(* ------------------------------------------------------------------ *)
(* Control plane: multi-shard churn through Fr_ctrl *)

let ctrl () =
  Report.print_header
    "Control plane: 4-shard churn through Fr_ctrl (coalescing queues + \
     batched drains), FW5";
  let ops = 10_000 in
  let spec =
    {
      Churn.kind = Dataset.FW5;
      initial = 4_000;
      ops;
      shards = 4;
      (* Must hold a whole preload even under a maximally skewed routing
         policy (prefix locality does skew FW5); overflow then surfaces
         as per-shard failures instead of a preload abort. *)
      capacity = 6_000;
      batch = 64;
      seed;
    }
  in
  let sum svc f =
    let acc = ref 0 in
    for s = 0 to Ctrl.shards svc - 1 do
      acc := !acc + f (Shard.telemetry (Ctrl.shard svc s))
    done;
    !acc
  in
  let sumf svc f =
    let acc = ref 0.0 in
    for s = 0 to Ctrl.shards svc - 1 do
      acc := !acc +. f (Shard.telemetry (Ctrl.shard svc s))
    done;
    !acc
  in
  (* Rows: the two routing policies, then the metric-refresh cadence sweep
     (r=K refreshes the stale metrics every K batched inserts; r=1 keeps
     per-op movement quality, deferring trades extra TCAM ops for less
     firmware bookkeeping). *)
  let scenarios =
    [
      ("hash/r1", Partition.Hash_id, 1);
      ("prefix8/r1", Partition.Dst_prefix 8, 1);
      ("hash/r4", Partition.Hash_id, 4);
      ("hash/r16", Partition.Hash_id, 16);
      ("hash/r-inf", Partition.Hash_id, max_int);
    ]
  in
  Format.printf "%-12s %8s %8s %8s %7s %9s %8s %9s %9s %9s@." "scenario"
    "submit" "coalesce" "applied" "failed" "tcam-ops" "fw(ms)" "hw(ms)"
    "p50(ms)" "p99(ms)";
  let results =
    List.map
      (fun (name, policy, refresh) ->
        let r = Churn.run ~policy ~refresh_every:refresh spec in
        let svc = r.Churn.service in
        let w = r.Churn.flush_wall_ms in
        Format.printf "%-12s %8d %8d %8d %7d %9d %8.2f %9.1f %9.3f %9.3f@."
          name r.Churn.submitted r.Churn.coalesced r.Churn.applied
          r.Churn.failed
          (sum svc Telemetry.tcam_ops)
          (sumf svc Telemetry.firmware_ms_total)
          (sumf svc Telemetry.hardware_ms_total)
          w.Measure.p50 w.Measure.p99;
        (name, r))
      scenarios
  in
  (* Parallel flush sweep: kind x size x domains, 8 shards.  The drain
     results are identical across domain counts by construction (the
     deterministic join) — what varies is wall-clock, and only on
     machines that actually have spare cores: on a single-core host the
     table records parity, which is the honest baseline the trajectory
     starts from. *)
  let par_shards = 8 in
  let par_kinds =
    if !quick then [ Dataset.FW5 ] else [ Dataset.FW5; Dataset.ACL4 ]
  in
  let par_sizes = if !quick then [ 4_000 ] else [ 10_000; 40_000 ] in
  let par_domains = [ 1; 2; 4 ] in
  Format.printf
    "@.parallel flush: domain-per-shard drains, %d shards (cores here: %d)@."
    par_shards (Pool.recommended ());
  Format.printf "%-6s %8s %8s %8s %8s %11s %9s %9s %8s@." "kind" "size"
    "domains" "flushes" "applied" "drain(ms)" "p50(ms)" "p99(ms)" "speedup";
  let par_rows =
    List.concat_map
      (fun kind ->
        List.concat_map
          (fun size ->
            let seq_wall = ref nan in
            let seq_applied = ref (-1) in
            List.map
              (fun domains ->
                let spec =
                  {
                    Churn.kind;
                    initial = size;
                    ops = max 2_000 (size / 4);
                    shards = par_shards;
                    capacity = size / 2;
                    batch = 256;
                    seed;
                  }
                in
                let r = Churn.run ~domains spec in
                let w = r.Churn.flush_wall_ms in
                let total = float_of_int w.Measure.count *. w.Measure.mean in
                if domains = 1 then begin
                  seq_wall := total;
                  seq_applied := r.Churn.applied
                end
                else if r.Churn.applied <> !seq_applied then
                  Format.printf
                    "WARNING: %s/%d domains=%d applied %d <> sequential %d \
                     (determinism breach)@."
                    (Dataset.to_string kind) size domains r.Churn.applied
                    !seq_applied;
                let speedup = !seq_wall /. total in
                Format.printf
                  "%-6s %8d %8d %8d %8d %11.1f %9.3f %9.3f %7.2fx@."
                  (Dataset.to_string kind) size domains r.Churn.flushes
                  r.Churn.applied total w.Measure.p50 w.Measure.p99 speedup;
                (kind, size, domains, r, total, speedup))
              par_domains)
          par_sizes)
      par_kinds
  in
  (* One-line regression sentinel: sequential vs widest at the biggest
     sweep point, visible without opening the JSON. *)
  (let top_kind = List.hd par_kinds in
   let top_size = List.nth par_sizes (List.length par_sizes - 1) in
   let top_domains = List.nth par_domains (List.length par_domains - 1) in
   let wall_of d =
     List.find_map
       (fun (k, s, dm, _, total, _) ->
         if k = top_kind && s = top_size && dm = d then Some total else None)
       par_rows
   in
   match (wall_of 1, wall_of top_domains) with
   | Some seq_ms, Some par_ms ->
       Format.printf
         "@.speedup summary (%s, %d rules): %.1f ms seq / %.1f ms at %d \
          domains = %.2fx@."
         (Dataset.to_string top_kind) top_size seq_ms par_ms top_domains
         (seq_ms /. par_ms)
   | _ -> ());
  (* Machine-readable dump: headline figures per scenario plus the full
     per-shard telemetry (schema in doc/CTRL.md). *)
  let open Telemetry.Json in
  let doc =
    Obj
      [
        ("bench", Str "ctrl");
        ("algo", Str "fr-o");
        ("kind", Str (Dataset.to_string spec.Churn.kind));
        ("shards", Int spec.Churn.shards);
        ("ops", Int ops);
        ( "scenarios",
          List
            (List.map
               (fun (name, (r : Churn.result)) ->
                 let svc = r.Churn.service in
                 Obj
                   [
                     ("scenario", Str name);
                     ("algo", Str "fr-o");
                     ("ops", Int ops);
                     ("submitted", Int r.Churn.submitted);
                     ("applied", Int r.Churn.applied);
                     ("failed", Int r.Churn.failed);
                     ("coalesced", Int r.Churn.coalesced);
                     ("flushes", Int r.Churn.flushes);
                     ("flush_wall_p50_ms", Float r.Churn.flush_wall_ms.Measure.p50);
                     ("flush_wall_p99_ms", Float r.Churn.flush_wall_ms.Measure.p99);
                     ("tcam_ops", Int (sum svc Telemetry.tcam_ops));
                     ("firmware_ms", Float (sumf svc Telemetry.firmware_ms_total));
                     ("hardware_ms", Float (sumf svc Telemetry.hardware_ms_total));
                     ("service", Ctrl.to_json ~scenario:name svc);
                   ])
               results) );
        ( "parallel",
          List
            (List.map
               (fun (kind, size, domains, (r : Churn.result), total, speedup) ->
                 let w = r.Churn.flush_wall_ms in
                 Obj
                   [
                     ("kind", Str (Dataset.to_string kind));
                     ("size", Int size);
                     ("domains", Int domains);
                     ("shards", Int par_shards);
                     ("flushes", Int r.Churn.flushes);
                     ("applied", Int r.Churn.applied);
                     ("drain_wall_total_ms", Float total);
                     ("flush_wall_p50_ms", Float w.Measure.p50);
                     ("flush_wall_p99_ms", Float w.Measure.p99);
                     ("speedup_vs_seq", Float speedup);
                   ])
               par_rows) );
        ("cores", Int (Pool.recommended ()));
      ]
  in
  let oc = open_out "BENCH_ctrl.json" in
  output_string oc (to_string doc);
  output_char oc '\n';
  close_out oc;
  Format.printf "@.wrote BENCH_ctrl.json (%d scenarios)@."
    (List.length results)

(* ------------------------------------------------------------------ *)
(* conform: throughput of the differential oracle — how many scheduler-
   emitted ops the shadow-table check validates per second, and what the
   whole five-way cross-examination costs over a checked run. *)

let conform () =
  let events = if !quick then 150 else 400 in
  let initial = if !quick then 300 else 500 in
  let specs = [ Dataset.ACL4; Dataset.FW5; Dataset.ROUTE ] in
  Format.printf "%-7s %7s %7s %10s %10s %12s %9s %8s@." "kind" "events"
    "checked" "verify-ms" "wall-ms" "checked/s" "overhead" "diverge";
  let results =
    List.map
      (fun kind ->
        let trace =
          Trace.generate ~kind ~seed ~initial ~pool:(2 * initial)
            ~capacity:(4 * initial) ~events ()
        in
        let checked = Oracle.run trace in
        let unchecked =
          Oracle.run
            ~config:{ Oracle.default_config with Oracle.verify = false }
            trace
        in
        let rate =
          if checked.Oracle.verify_ms > 0. then
            float_of_int checked.Oracle.checked_ops
            /. (checked.Oracle.verify_ms /. 1000.)
          else 0.
        in
        let overhead =
          if unchecked.Oracle.wall_ms > 0. then
            100.
            *. (checked.Oracle.wall_ms -. unchecked.Oracle.wall_ms)
            /. unchecked.Oracle.wall_ms
          else 0.
        in
        let diverg = List.length checked.Oracle.divergences in
        Format.printf "%-7s %7d %7d %10.2f %10.1f %12.0f %8.1f%% %8d@."
          (Dataset.to_string kind) events checked.Oracle.checked_ops
          checked.Oracle.verify_ms checked.Oracle.wall_ms rate overhead diverg;
        if diverg > 0 then
          Format.printf "!! conformance divergence on a clean run — %a@."
            Oracle.pp_report checked;
        (kind, checked, unchecked, rate, overhead))
      specs
  in
  let open Telemetry.Json in
  let doc =
    Obj
      [
        ("bench", Str "conform");
        ("seed", Int seed);
        ("events", Int events);
        ("initial", Int initial);
        ( "runs",
          List
            (List.map
               (fun (kind, checked, unchecked, rate, overhead) ->
                 Obj
                   [
                     ("kind", Str (Dataset.to_string kind));
                     ("schedulers", Int (List.length checked.Oracle.columns));
                     ("events", Int checked.Oracle.events_run);
                     ("probes", Int checked.Oracle.probes_run);
                     ("checked_ops", Int checked.Oracle.checked_ops);
                     ("verify_ms", Float checked.Oracle.verify_ms);
                     ("checked_ops_per_s", Float rate);
                     ("wall_ms_checked", Float checked.Oracle.wall_ms);
                     ("wall_ms_unchecked", Float unchecked.Oracle.wall_ms);
                     ("verify_overhead_pct", Float overhead);
                     ( "divergences",
                       Int (List.length checked.Oracle.divergences) );
                   ])
               results) );
      ]
  in
  let oc = open_out "BENCH_conform.json" in
  output_string oc (to_string doc);
  output_char oc '\n';
  close_out oc;
  Format.printf "@.wrote BENCH_conform.json (%d workloads)@."
    (List.length results)

(* ------------------------------------------------------------------ *)
(* resil: the cost of surviving — crash-recovery time against table
   size, supervisor retry overhead against injected fault rates, and the
   circuit breaker quarantining a permanently-faulted shard while its
   siblings keep serving. *)

let resil () =
  let rm_rf dir =
    try
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      Sys.rmdir dir
    with Sys_error _ -> ()
  in
  let open Telemetry.Json in
  (* -- recovery time vs table kind and size ------------------------- *)
  (* ClassBench-style kinds with genuinely different dependency shapes,
     swept to the paper's 40k-rule scale. *)
  let rec_kinds =
    if !quick then [ Dataset.ACL4 ]
    else [ Dataset.ACL4; Dataset.FW5; Dataset.ROUTE ]
  in
  let rec_sizes =
    if !quick then [ 500; 2_000 ] else [ 1_000; 4_000; 16_000; 40_000 ]
  in
  Format.printf "%-6s %-8s %9s %9s %9s %8s %10s@." "kind" "initial" "drains"
    "mods" "requeued" "rules" "recover-ms";
  let recovery_rows =
    List.concat_map
      (fun kind ->
        List.map
          (fun n ->
            let dir = Journal.fresh_dir ~prefix:"fr-bench-resil" in
            let spec =
              {
                Churn.kind;
                initial = n;
                ops = n / 2;
                shards = 2;
                capacity = 2 * n;
                batch = 64;
                seed;
              }
            in
            let r =
              Churn.run ~journal:dir ~stop_after_flushes:(n / 256) spec
            in
            Ctrl.simulate_crash ~mid_drain:true r.Churn.service;
            let rec_, ms =
              Measure.time_ms (fun () -> Ctrl.recover ~journal:dir ())
            in
            let kname = Dataset.to_string kind in
            let row =
              match rec_ with
              | Error e ->
                  Format.printf "%-6s %-8d recovery FAILED: %s@." kname n e;
                  Obj [ ("kind", Str kname); ("initial", Int n); ("error", Str e) ]
              | Ok rc ->
                  Format.printf "%-6s %-8d %9d %9d %9d %8d %10.1f@." kname n
                    rc.Ctrl.replayed_drains rc.Ctrl.replayed_mods
                    rc.Ctrl.requeued
                    (Ctrl.rule_count rc.Ctrl.service)
                    ms;
                  Obj
                    [
                      ("kind", Str kname);
                      ("initial", Int n);
                      ("replayed_drains", Int rc.Ctrl.replayed_drains);
                      ("replayed_mods", Int rc.Ctrl.replayed_mods);
                      ("requeued", Int rc.Ctrl.requeued);
                      ("rules", Int (Ctrl.rule_count rc.Ctrl.service));
                      ("recover_ms", Float ms);
                      ("warnings", Int (List.length rc.Ctrl.warnings));
                    ]
            in
            rm_rf dir;
            row)
          rec_sizes)
      rec_kinds
  in
  (* -- retry overhead vs fault rate -------------------------------- *)
  let fault_rates = [ 0.0; 0.01; 0.05 ] in
  let churn_spec =
    {
      Churn.kind = Dataset.ACL4;
      initial = (if !quick then 500 else 2_000);
      ops = (if !quick then 1_000 else 5_000);
      shards = 4;
      capacity = (if !quick then 2_000 else 8_000);
      batch = 64;
      seed;
    }
  in
  Format.printf "@.%-7s %8s %7s %7s %8s %11s %10s@." "fault-p" "applied"
    "failed" "retries" "re-ops" "backoff-ms" "p99(ms)";
  let retry_rows =
    List.map
      (fun p ->
        let configure svc =
          if p > 0. then
            for s = 0 to Ctrl.shards svc - 1 do
              Ctrl.set_fault svc ~shard:s
                (Some (Fault.create ~fail_prob:p ~seed:(seed + s) ()))
            done
        in
        let r = Churn.run ~configure churn_spec in
        let svc = r.Churn.service in
        let sum f =
          let acc = ref 0 in
          for s = 0 to Ctrl.shards svc - 1 do
            acc := !acc + f (Shard.telemetry (Ctrl.shard svc s))
          done;
          !acc
        in
        let backoff =
          let acc = ref 0.0 in
          for s = 0 to Ctrl.shards svc - 1 do
            acc :=
              !acc +. Telemetry.backoff_ms_total (Shard.telemetry (Ctrl.shard svc s))
          done;
          !acc
        in
        Format.printf "%-7.2f %8d %7d %7d %8d %11.1f %10.3f@." p
          r.Churn.applied r.Churn.failed r.Churn.retries
          (sum Telemetry.retried_ops)
          backoff r.Churn.flush_wall_ms.Measure.p99;
        Obj
          [
            ("fault_prob", Float p);
            ("applied", Int r.Churn.applied);
            ("failed", Int r.Churn.failed);
            ("retries", Int r.Churn.retries);
            ("retried_ops", Int (sum Telemetry.retried_ops));
            ("backoff_ms", Float backoff);
            ("flush_wall_p99_ms", Float r.Churn.flush_wall_ms.Measure.p99);
          ])
      fault_rates
  in
  (* -- breaker: one shard permanently faulted ----------------------- *)
  let resil_policy =
    { Ctrl.default_resil with Ctrl.queue_bound = 32; breaker_threshold = 2 }
  in
  let configure svc =
    Ctrl.set_fault svc ~shard:0 (Some (Fault.create ~fail_prob:1.0 ~seed ()))
  in
  let r = Churn.run ~resil:resil_policy ~configure churn_spec in
  let svc = r.Churn.service in
  let shard0 = Shard.telemetry (Ctrl.shard svc 0) in
  let sibling_applied =
    let acc = ref 0 in
    for s = 1 to Ctrl.shards svc - 1 do
      acc := !acc + Telemetry.applied (Shard.telemetry (Ctrl.shard svc s))
    done;
    !acc
  in
  Format.printf
    "@.breaker: shard 0 at fault-p 1.0 — state %s, %d opens, %d shed; \
     shard 0 applied %d, siblings applied %d@."
    (Telemetry.breaker_state shard0)
    r.Churn.breaker_opens r.Churn.shed
    (Telemetry.applied shard0)
    sibling_applied;
  let breaker_row =
    Obj
      [
        ("shard0_state", Str (Telemetry.breaker_state shard0));
        ("breaker_opens", Int r.Churn.breaker_opens);
        ("shed", Int r.Churn.shed);
        ("shard0_applied", Int (Telemetry.applied shard0));
        ("sibling_applied", Int sibling_applied);
        ("failed", Int r.Churn.failed);
      ]
  in
  (* -- failover: graceful degradation under a persistent slow shard -- *)
  let failover_resil =
    {
      Ctrl.default_resil with
      Ctrl.failover = true;
      slow_drain_ms = 2.0;
      breaker_slow_threshold = 2;
      breaker_cooldown = 2;
    }
  in
  let fo_configure svc =
    Ctrl.set_fault svc ~shard:0 (Some (Fault.create ~slow_ms:8.0 ~seed ()))
  in
  let fo = Churn.run ~resil:failover_resil ~configure:fo_configure churn_spec in
  let fo_svc = fo.Churn.service in
  (* Heal and flush until the overlay drains home — the recovery half of
     the failover loop, timed. *)
  Ctrl.set_fault fo_svc ~shard:0 None;
  let heal_flushes = ref 0 in
  let (), heal_ms =
    Measure.time_ms (fun () ->
        while
          (Ctrl.diverted_count fo_svc > 0 || Ctrl.pending fo_svc > 0)
          && !heal_flushes < 100
        do
          ignore (Ctrl.flush fo_svc);
          incr heal_flushes
        done)
  in
  Format.printf
    "@.failover: slow shard 0 — %d diverted, %d shed, %d failed; healed in \
     %d flushes (%.1f ms), %d residual diverted@."
    fo.Churn.diverted fo.Churn.shed fo.Churn.failed !heal_flushes heal_ms
    (Ctrl.diverted_count fo_svc);
  let fo_rebalanced =
    let acc = ref 0 in
    for s = 0 to Ctrl.shards fo_svc - 1 do
      acc := !acc + Telemetry.rebalanced (Shard.telemetry (Ctrl.shard fo_svc s))
    done;
    !acc
  in
  let failover_row =
    Obj
      [
        ("diverted", Int fo.Churn.diverted);
        ("rebalanced", Int fo_rebalanced);
        ("shed", Int fo.Churn.shed);
        ("failed", Int fo.Churn.failed);
        ("breaker_opens", Int fo.Churn.breaker_opens);
        ("heal_flushes", Int !heal_flushes);
        ("heal_ms", Float heal_ms);
        ("residual_diverted", Int (Ctrl.diverted_count fo_svc));
      ]
  in
  let doc =
    Obj
      [
        ("bench", Str "resil");
        ("seed", Int seed);
        ("recovery", List recovery_rows);
        ("retry", List retry_rows);
        ("breaker", breaker_row);
        ("failover", failover_row);
      ]
  in
  let oc = open_out "BENCH_resil.json" in
  output_string oc (to_string doc);
  output_char oc '\n';
  close_out oc;
  Format.printf "@.wrote BENCH_resil.json@."

(* ------------------------------------------------------------------ *)
(* cache: the TCAM-as-cache tier's hit-rate x update-cost frontier.
   Sweeps Zipf skew x cache size x scheduler: higher skew concentrates
   the access stream so a small cache earns its keep, while the
   scheduler choice prices the admission/eviction churn each flush
   round pays in TCAM moves.  Conformance is the test suite's job
   (cache-tier oracle); here checking is off so the numbers are pure
   cache mechanics. *)

let cache () =
  let skews = if !quick then [ 0.0; 1.1 ] else [ 0.0; 0.8; 1.2 ] in
  let slot_sizes = if !quick then [ 128 ] else [ 256; 1_024 ] in
  let n = if !quick then 1_000 else 4_000 in
  let flows = if !quick then 50_000 else 200_000 in
  let accesses = if !quick then 3_000 else 12_000 in
  Format.printf "@.== cache: hit-rate x update-cost frontier ==@.";
  Format.printf "table %s n=%d, %d flows, %d accesses, policy %s@.@."
    (Dataset.to_string Dataset.ACL4)
    n flows accesses
    (Cache_policy.kind_to_string Cache_policy.Lru);
  let results =
    List.concat_map
      (fun skew ->
        List.concat_map
          (fun slots ->
            let spec =
              {
                Cache_driver.default_spec with
                Cache_driver.n;
                seed;
                flows;
                skew;
                accesses;
                slots;
              }
            in
            List.map
              (fun algo ->
                let r = Cache_driver.run ~algo ~check:false ~probes:0 spec in
                Format.printf "%a" Cache_driver.pp_result r;
                r)
              (Firmware.standard_algos backend))
          slot_sizes)
      skews
  in
  let open Telemetry.Json in
  let doc =
    Obj
      [
        ("bench", Str "cache");
        ("quick", Bool !quick);
        ("seed", Int seed);
        ("rows", List (List.map Cache_driver.result_json results));
      ]
  in
  let oc = open_out "BENCH_cache.json" in
  output_string oc (to_string doc);
  output_char oc '\n';
  close_out oc;
  Format.printf "@.wrote BENCH_cache.json (%d rows)@." (List.length results)

(* ------------------------------------------------------------------ *)
(* net: the network-wide rollout planner's cost surface.  Sweeps
   topology size x per-switch batch budget: more switches mean longer
   paths (more mods per flow), while a smaller batch stretches the same
   mod set over more rounds — the makespan is the rollout's wall clock
   through real per-switch services, and the per-round touched-switch
   counts show how wide each round fans out.  Consistency is the test
   suite's job (net oracle); here checking is off so the numbers are
   pure rollout mechanics. *)

let net () =
  let shapes =
    if !quick then [ Net_topo.Ring ] else [ Net_topo.Line; Net_topo.Ring; Net_topo.Tree ]
  in
  let node_counts = if !quick then [ 6; 10 ] else [ 6; 12; 24 ] in
  let batches = if !quick then [ 2; 8 ] else [ 1; 4; 16 ] in
  Format.printf "@.== net: rollout rounds x makespan ==@.";
  let rows =
    List.concat_map
      (fun shape ->
        List.concat_map
          (fun nodes ->
            List.map
              (fun batch ->
                let topo = Net_topo.make shape nodes in
                let flows = nodes in
                let sc =
                  Net_scenario.make ~flows ~reroute:(flows / 3)
                    ~withdraw:1 ~introduce:1 ~waypoints:2 ~seed topo
                in
                let plan =
                  match Net_scenario.plan ~batch sc with
                  | Ok p -> p
                  | Error e -> failwith e
                in
                let fleet =
                  Net.of_policy ~capacity:(4 * flows) topo sc.old_policy
                in
                let report = Net.execute fleet plan in
                assert (report.Net.completed && report.Net.failed = 0);
                Format.printf
                  "%-5s %3d nodes  batch %2d: %2d rounds  %3d mods  \
                   makespan %6.2f ms@."
                  (Net_topo.shape_name topo) nodes batch
                  (Net_plan.num_rounds plan)
                  report.Net.applied report.Net.wall_ms;
                let open Telemetry.Json in
                Obj
                  [
                    ("shape", Str (Net_topo.shape_name topo));
                    ("nodes", Int nodes);
                    ("flows", Int flows);
                    ("batch", Int batch);
                    ("seed", Int seed);
                    ("domains", Int (Net.domains fleet));
                    ("rounds", Int (Net_plan.num_rounds plan));
                    ("total_mods", Int (Net_plan.total_mods plan));
                    ("applied", Int report.Net.applied);
                    ("makespan_ms", Float report.Net.wall_ms);
                    ( "round_touched",
                      List
                        (Stdlib.List.map
                           (fun (s : Net.round_stat) -> Int s.Net.r_switches)
                           report.Net.per_round) );
                    ( "round_mods",
                      List
                        (Stdlib.List.map
                           (fun (s : Net.round_stat) -> Int s.Net.r_mods)
                           report.Net.per_round) );
                  ])
              batches)
          node_counts)
      shapes
  in
  let open Telemetry.Json in
  let doc =
    Obj
      [
        ("bench", Str "net");
        ("quick", Bool !quick);
        ("seed", Int seed);
        ("rows", List rows);
      ]
  in
  let oc = open_out "BENCH_net.json" in
  output_string oc (to_string doc);
  output_char oc '\n';
  close_out oc;
  Format.printf "@.wrote BENCH_net.json (%d rows)@."
    (Stdlib.List.length rows)

(* ------------------------------------------------------------------ *)
(* degrade: churn cost on dead-row hardware.  Sweeps dead-fraction x
   scheduler: a seeded stuck bank condemns a fraction of every shard's
   rows before the stream starts, the firmware discovers the holes
   through write failures and packs around them, and the sweep prices
   the overhead — discovery retries, extra moves, flush wall — against
   the healthy frac-0 baseline.  Correctness is the test suite's job
   (degraded oracle); here the numbers are pure mechanics. *)

let degrade () =
  let fracs = if !quick then [ 0.0; 0.10 ] else [ 0.0; 0.05; 0.10; 0.20 ] in
  let shards = 3 in
  let n = if !quick then 240 else 900 in
  let ops = if !quick then 400 else 2_000 in
  let capacity = if !quick then 160 else 600 in
  let batch = 64 in
  Format.printf "@.== degrade: churn cost on dead-row hardware ==@.";
  Format.printf "%d shards x %d slots, %d preloaded, %d ops in windows of %d@.@."
    shards capacity n ops batch;
  let resil =
    { Ctrl.default_resil with Ctrl.failover = true; retry_budget = 8 }
  in
  let stuck_bank ~frac s =
    let rows = max 1 (int_of_float (frac *. float_of_int capacity)) in
    let rng = Rng.create ~seed:(seed lxor 0xdead lxor (s * 0x9e37)) in
    let tbl = Hashtbl.create rows in
    while Hashtbl.length tbl < rows do
      Hashtbl.replace tbl (Rng.int rng capacity) ()
    done;
    Hashtbl.fold (fun a () acc -> a :: acc) tbl []
  in
  let rows =
    List.concat_map
      (fun frac ->
        List.map
          (fun algo ->
            let configure =
              if frac = 0.0 then None
              else
                Some
                  (fun svc ->
                    for s = 0 to shards - 1 do
                      Ctrl.set_fault svc ~shard:s
                        (Some
                           (Fault.create ~stuck:(stuck_bank ~frac s)
                              ~seed:(seed lxor (0x5a17 + s))
                              ()))
                    done)
            in
            let spec =
              { Churn.kind = Dataset.ACL4; initial = n; ops; shards; capacity;
                batch; seed }
            in
            let r = Churn.run ~algo ~resil ?configure spec in
            let svc = r.Churn.service in
            let sum f =
              let acc = ref 0 in
              for s = 0 to Ctrl.shards svc - 1 do
                acc := !acc + f (Shard.telemetry (Ctrl.shard svc s))
              done;
              !acc
            in
            let dead = Ctrl.dead_rows svc in
            let w = r.Churn.flush_wall_ms in
            Format.printf
              "%-8s dead %2d%%: applied %4d  transient-failed %3d  retries \
               %3d  shed %d  dead-rows %3d  tcam-ops %5d  flush p99 %.2f ms@."
              (Firmware.algo_kind_name algo)
              (int_of_float (frac *. 100.))
              r.Churn.applied r.Churn.failed r.Churn.retries r.Churn.shed dead
              (sum Telemetry.tcam_ops) w.Measure.p99;
            let open Telemetry.Json in
            Obj
              [
                ("algo", Str (Firmware.algo_kind_name algo));
                ("dead_frac", Float frac);
                ("applied", Int r.Churn.applied);
                ("transient_failed", Int r.Churn.failed);
                ("retries", Int r.Churn.retries);
                ("shed", Int r.Churn.shed);
                ("dead_rows", Int dead);
                ("degraded_diverted", Int (sum Telemetry.degraded_diverted));
                ("tcam_ops", Int (sum Telemetry.tcam_ops));
                ("flushes", Int r.Churn.flushes);
                ("flush_wall_p50_ms", Float w.Measure.p50);
                ("flush_wall_p99_ms", Float w.Measure.p99);
              ])
          (Firmware.standard_algos backend))
      fracs
  in
  let open Telemetry.Json in
  let doc =
    Obj
      [
        ("bench", Str "degrade");
        ("quick", Bool !quick);
        ("seed", Int seed);
        ("kind", Str (Dataset.to_string Dataset.ACL4));
        ("shards", Int shards);
        ("capacity", Int capacity);
        ("ops", Int ops);
        ("rows", List rows);
      ]
  in
  let oc = open_out "BENCH_degrade.json" in
  output_string oc (to_string doc);
  output_char oc '\n';
  close_out oc;
  Format.printf "@.wrote BENCH_degrade.json (%d rows)@." (List.length rows)

(* ------------------------------------------------------------------ *)
(* plane: lookup latency while the table is being rewritten under it.
   Sweeps update rate x Zipf skew x scheduler: the readers sample
   shard 0's published snapshots throughout the storm, so the
   quantiles price what a data-plane packet pays for a concurrent
   cascade — nothing, if publication really is one pointer swap.
   Correctness is the test suite's and @plane's job (snapshot oracle,
   backend agreement); here the numbers are pure lookup mechanics.
   The lookup-side quantiles are wall-clock dependent; result_json
   quarantines them under Plane.volatile_keys so the storm side stays
   reproducible from the seed. *)

let plane () =
  let op_counts = if !quick then [ 800 ] else [ 1_000; 4_000 ] in
  let skews = if !quick then [ 0.0; 1.1 ] else [ 0.0; 0.8; 1.2 ] in
  let n = if !quick then 300 else 1_000 in
  let flows = if !quick then 8_000 else 50_000 in
  Format.printf "@.== plane: lookup p50/p99/p999 under update storms ==@.";
  let rows =
    List.concat_map
      (fun ops ->
        List.concat_map
          (fun skew ->
            List.map
              (fun algo ->
                let spec =
                  {
                    Plane.default_spec with
                    Plane.n;
                    seed;
                    flows;
                    skew;
                    ops;
                    min_lookups = (if !quick then 600 else 2_000);
                  }
                in
                let r = Plane.run ~algo spec in
                assert (r.Plane.disagree = 0);
                Format.printf "%a" Plane.pp_result r;
                Plane.result_json r)
              (Firmware.standard_algos backend))
          skews)
      op_counts
  in
  let open Telemetry.Json in
  let doc =
    Obj
      [
        ("bench", Str "plane");
        ("quick", Bool !quick);
        ("seed", Int seed);
        ("kind", Str (Dataset.to_string Plane.default_spec.Plane.kind));
        ("rows", List rows);
      ]
  in
  let oc = open_out "BENCH_plane.json" in
  output_string oc (to_string doc);
  output_char oc '\n';
  close_out oc;
  Format.printf "@.wrote BENCH_plane.json (%d rows)@." (List.length rows)

(* ------------------------------------------------------------------ *)

let sections =
  [
    (* micro first: Bechamel numbers are cleanest before the experiment
       sweeps fill the major heap with cached tables. *)
    ("micro", micro);
    ("table2", table2);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("ablation", ablation);
    ("ctrl", ctrl);
    ("conform", conform);
    ("resil", resil);
    ("cache", cache);
    ("net", net);
    ("degrade", degrade);
    ("plane", plane);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let args =
    List.filter
      (fun a ->
        if a = "--quick" then begin
          quick := true;
          false
        end
        else true)
      args
  in
  let chosen = if args = [] then List.map fst sections else args in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f ->
          let t = Unix.gettimeofday () in
          f ();
          Format.printf "@.[%s done in %.1fs]@." name (Unix.gettimeofday () -. t)
      | None ->
          Format.eprintf "unknown section %S (known: %s)@." name
            (String.concat ", " (List.map fst sections));
          exit 2)
    chosen;
  Format.printf "@.Total: %.1fs@." (Unix.gettimeofday () -. t0)
