(* fastrule_cli — command-line front end for the FastRule reproduction.

   Subcommands:
     stats    generate a table and print its dependency-graph statistics
     run      replay an update stream against chosen schedulers
     hw       demonstrate the ONetSwitch-style modulo-address emulation *)

open Fastrule
open Cmdliner

let kind_conv =
  let parse s =
    match Dataset.of_string s with
    | Some k -> Ok k
    | None -> Error (`Msg (Printf.sprintf "unknown table kind %S" s))
  in
  Arg.conv (parse, fun ppf k -> Format.pp_print_string ppf (Dataset.to_string k))

let kind_arg =
  Arg.(
    value
    & opt kind_conv Dataset.ACL4
    & info [ "k"; "kind" ] ~docv:"KIND"
        ~doc:"Table type: acl4, acl5, fw4, fw5 or route.")

let n_arg =
  Arg.(value & opt int 1_000 & info [ "n" ] ~docv:"N" ~doc:"Initial table size.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "f"; "file" ] ~docv:"PATH"
        ~doc:"Operate on a saved rule table instead of generating one.")

(* --- stats ----------------------------------------------------------- *)

let stats_cmd =
  let run kind n seed file =
    let name, rules =
      match file with
      | Some path -> (
          match Rules_io.load path with
          | Ok rules -> (path, rules)
          | Error e ->
              Format.eprintf "cannot load %s: %s@." path e;
              exit 1)
      | None -> (Dataset.to_string kind, Dataset.generate kind ~seed ~n)
    in
    let graph = Dag_build.compile rules in
    let s = Dag_stats.compute graph in
    Format.printf "%s n=%d: %a@." name (Array.length rules) Fr_dag.Stats.pp s;
    Format.printf "priority levels needed (DAG height): %d@." (Levels.height graph)
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Table and dependency-graph statistics (Table II).")
    Term.(const run $ kind_arg $ n_arg $ seed_arg $ file_arg)

(* --- generate -------------------------------------------------------- *)

let generate_cmd =
  let run kind n seed out =
    let rules = Dataset.generate kind ~seed ~n in
    match out with
    | Some path ->
        Rules_io.save path rules;
        Format.printf "wrote %d %s rules to %s@." n (Dataset.to_string kind) path
    | None -> print_string (Rules_io.to_string rules)
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"PATH"
          ~doc:"Write to a file instead of stdout.")
  in
  Cmd.v
    (Cmd.info "generate"
       ~doc:"Generate a synthetic rule table and emit it in the \
             fastrule-table text format.")
    Term.(const run $ kind_arg $ n_arg $ seed_arg $ out_arg)

(* --- run ------------------------------------------------------------- *)

let algo_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "naive" -> Ok Firmware.Naive
    | "ruletris" -> Ok Firmware.Ruletris
    | "fr-o" -> Ok (Firmware.FR_O Store.Bit_backend)
    | "fr-o/array" -> Ok (Firmware.FR_O Store.Array_backend)
    | "fr-o/od" | "fr-o/on-demand" -> Ok (Firmware.FR_O Store.On_demand)
    | "fr-sd" -> Ok (Firmware.FR_SD Store.Bit_backend)
    | "fr-sb" -> Ok (Firmware.FR_SB Store.Bit_backend)
    | _ -> Error (`Msg (Printf.sprintf "unknown algorithm %S" s))
  in
  Arg.conv
    (parse, fun ppf k -> Format.pp_print_string ppf (Firmware.algo_kind_name k))

let run_cmd =
  let run kind n seed updates deletes algos csv =
    let updates = Option.value updates ~default:(Experiment.updates_for n) in
    let spec = { Experiment.kind; n; updates; with_deletes = deletes; seed } in
    let algos =
      if algos = [] then Firmware.standard_algos Store.Bit_backend else algos
    in
    let rows = Experiment.run_spec spec ~algos in
    if csv then begin
      print_endline Report.csv_header;
      List.iter (fun r -> print_endline (Report.row_to_csv r)) rows
    end
    else Report.print_rows rows
  in
  let updates_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "u"; "updates" ] ~docv:"COUNT"
          ~doc:"Stream length (default: the paper's 250/500/1000 rule).")
  in
  let deletes_arg =
    Arg.(
      value & flag
      & info [ "d"; "deletes" ]
          ~doc:"Alternate insertions with deletions (the paper's second \
                stream type).")
  in
  let algos_arg =
    Arg.(
      value
      & opt (list algo_conv) []
      & info [ "a"; "algos" ] ~docv:"ALGOS"
          ~doc:"Comma-separated schedulers: naive, ruletris, fr-o, \
                fr-o/array, fr-o/od, fr-sd, fr-sb.  Default: all five \
                paper configurations.")
  in
  let csv_arg =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of a table.")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Replay a random update stream against chosen schedulers and \
             report firmware / TCAM time.")
    Term.(
      const run $ kind_arg $ n_arg $ seed_arg $ updates_arg $ deletes_arg
      $ algos_arg $ csv_arg)

(* --- hw -------------------------------------------------------------- *)

let hw_cmd =
  let run n seed =
    let table = Dataset.build_table Dataset.ACL4 ~seed ~n in
    let emu = Hw_emu.create ~logical_size:(2 * n) () in
    Array.iteri
      (fun i id -> Hw_emu.add_entry emu ~rule_id:id ~addr:i)
      table.Dataset.order;
    Format.printf
      "Loaded %d entries into a logical table of %d slots through a %d-entry \
       hardware TCAM (modulo addressing).@."
      n (2 * n) (Hw_emu.hw_size emu);
    Format.printf "SDK calls: %d, modelled hardware time: %.1f ms@."
      (Hw_emu.hw_calls emu) (Hw_emu.elapsed_ms emu);
    match Tcam.check_dag_order (Hw_emu.logical emu) table.Dataset.graph with
    | Ok () -> Format.printf "Shadow-table dependency order: OK@."
    | Error e -> Format.printf "Shadow-table dependency order violated: %s@." e
  in
  Cmd.v
    (Cmd.info "hw"
       ~doc:"Demonstrate the ONetSwitch-style large-table emulation (SVI.1).")
    Term.(const run $ n_arg $ seed_arg)

(* --- ctrl ------------------------------------------------------------ *)

let policy_conv =
  let parse s =
    match Partition.policy_of_string s with
    | Some p -> Ok p
    | None ->
        Error
          (`Msg (Printf.sprintf "unknown policy %S (hash or prefix:<k>)" s))
  in
  Arg.conv
    (parse, fun ppf p -> Format.pp_print_string ppf (Partition.policy_to_string p))

let fault_spec_conv =
  let parse s =
    match String.index_opt s ':' with
    | None -> Error (`Msg "expected SHARD:SPEC (e.g. 0:p=0.1,max=4)")
    | Some i -> (
        match int_of_string_opt (String.sub s 0 i) with
        | None -> Error (`Msg (Printf.sprintf "bad shard index in %S" s))
        | Some shard -> (
            match
              Fault.spec_of_string (String.sub s (i + 1) (String.length s - i - 1))
            with
            | Ok spec -> Ok (shard, spec)
            | Error e -> Error (`Msg e)))
  in
  Arg.conv
    ( parse,
      fun ppf (s, spec) ->
        Format.fprintf ppf "%d:%s" s (Fault.spec_to_string spec) )

(* One-line latency summary over a service's shards: the worst observed
   per-op hardware p99 and the adaptive slow-call threshold it produced,
   so drills read the gauge without parsing the JSON dump. *)
let pp_latency_line service =
  let thr = ref infinity and p99 = ref 0.0 in
  for s = 0 to Ctrl.shards service - 1 do
    let tel = Shard.telemetry (Ctrl.shard service s) in
    let t = Telemetry.slow_threshold_ms tel in
    if Float.is_finite t && ((not (Float.is_finite !thr)) || t > !thr) then
      thr := t;
    let p = (Telemetry.hw_per_op_ms tel).Measure.p99 in
    if Float.is_finite p && p > !p99 then p99 := p
  done;
  Format.printf "hw/op p99 (ms): %.3f  slow-call threshold (ms/op): %s@."
    !p99
    (if Float.is_finite !thr then Printf.sprintf "%.3f" !thr
     else "inf (off/warming)")

let ctrl_json path service ~scenario ~seed =
  let oc = open_out path in
  output_string oc
    (Telemetry.Json.to_string (Ctrl.to_json ~scenario ~seed service));
  output_char oc '\n';
  close_out oc;
  Format.printf "@.wrote per-shard telemetry to %s@." path

let ctrl_cmd =
  let run kind n seed shards capacity ops batch policy refresh_every json
      journal do_recover faults crash_after crash_mid allow_failures failover
      slow_call slow_factor chaos_n domains dead_frac =
    let bad fmt = Format.kasprintf (fun m -> Format.eprintf "fastrule_cli: %s@." m; exit 1) fmt in
    if shards < 1 then bad "--shards must be >= 1 (got %d)" shards;
    if capacity < 1 then bad "--capacity must be >= 1 (got %d)" capacity;
    if dead_frac < 0.0 || dead_frac >= 1.0 then
      bad "--dead-frac must be in [0, 1) (got %g)" dead_frac;
    if batch < 1 then bad "--batch must be >= 1 (got %d)" batch;
    if refresh_every < 1 then bad "--refresh-every must be >= 1 (got %d)" refresh_every;
    if domains < 1 then bad "--domains must be >= 1 (got %d)" domains;
    (match crash_after with
    | Some k when k < 1 -> bad "--crash-after must be >= 1 (got %d)" k
    | Some _ when journal = None ->
        bad "--crash-after needs --journal (a crash without a journal loses \
             everything)"
    | _ -> ());
    if do_recover then begin
      (* Recovery mode: the journal directory is the whole input — shape,
         checkpoint and intent all come from disk. *)
      let dir =
        match journal with
        | Some d -> d
        | None -> bad "--recover needs --journal DIR"
      in
      match Ctrl.recover ~domains ~journal:dir () with
      | Error e -> bad "recovery failed: %s" e
      | Ok r ->
          let service = r.Ctrl.service in
          Format.printf
            "recovered %d shards (%d rules) from %s@." (Ctrl.shards service)
            (Ctrl.rule_count service) dir;
          Format.printf
            "replayed %d committed drains (%d mods), requeued %d uncommitted, \
             %d shard(s) were mid-drain@."
            r.Ctrl.replayed_drains r.Ctrl.replayed_mods r.Ctrl.requeued
            r.Ctrl.interrupted;
          List.iter (fun w -> Format.printf "WARNING: %s@." w) r.Ctrl.warnings;
          let flushed =
            if Ctrl.pending service > 0 then begin
              let report = Ctrl.flush service in
              Format.printf "post-recovery flush: applied %d, failed %d@."
                (Ctrl.applied report)
                (List.length (Ctrl.failures report));
              Ctrl.failures report
            end
            else []
          in
          Format.printf "@.";
          pp_latency_line service;
          Ctrl.pp_stats Format.std_formatter service;
          (match json with
          | Some path -> ctrl_json path service ~scenario:("recover-" ^ dir) ~seed
          | None -> ());
          exit
            (if r.Ctrl.warnings = [] && (allow_failures || flushed = []) then 0
             else 1)
    end;
    let resil =
      let base = Ctrl.default_resil in
      let base = { base with Ctrl.failover } in
      let base =
        match slow_factor with
        | Some k when k <= 0.0 ->
            bad "--slow-factor must be positive (got %g)" k
        | Some k -> { base with Ctrl.slow_factor = k }
        | None -> base
      in
      match slow_call with
      | Some ms when ms <= 0.0 -> bad "--slow-call must be positive (got %g)" ms
      | Some ms -> { base with Ctrl.slow_drain_ms = ms }
      | None -> base
    in
    if chaos_n < 0 then bad "--chaos must be >= 0 (got %d)" chaos_n;
    let chaos =
      if chaos_n = 0 then []
      else begin
        let flushes = max 1 (ops / batch) in
        let plan =
          Churn.chaos_plan ~seed:(seed lxor 0xc405) ~shards ~flushes
            ~events:chaos_n
        in
        Format.printf "chaos plan (%d events%s):@." (List.length plan)
          (if journal = None then "; restarts need --journal, degraded to \
                                   no-ops"
           else "");
        List.iter (fun e -> Format.printf "  %a@." Churn.pp_chaos_event e) plan;
        plan
      end
    in
    let spec =
      { Churn.kind; initial = n; ops; shards; capacity; batch; seed }
    in
    (* Seeded stuck banks for the degraded-hardware chaos drill: every
       shard loses a random [dead_frac] of its rows to stuck-at-write
       faults before the stream starts. *)
    let dead_banks =
      if dead_frac = 0.0 then []
      else begin
        if faults <> [] then
          bad "--dead-frac and --fault cannot be combined (both own the \
               shard fault plans)";
        let rows = max 1 (int_of_float (dead_frac *. float_of_int capacity)) in
        List.init shards (fun s ->
            let rng = Rng.create ~seed:(seed lxor 0xdead lxor (s * 0x9e37)) in
            let tbl = Hashtbl.create rows in
            while Hashtbl.length tbl < rows do
              Hashtbl.replace tbl (Rng.int rng capacity) ()
            done;
            (s, Hashtbl.fold (fun a () acc -> a :: acc) tbl []))
      end
    in
    let resil =
      (* discovery costs one failed write per dead row first touched; give
         the retry budget room to absorb it within the same flush *)
      if dead_frac > 0.0 then
        { resil with Ctrl.retry_budget = max resil.Ctrl.retry_budget 8 }
      else resil
    in
    let configure =
      match (dead_banks, faults) with
      | [], [] -> None
      | banks, [] when banks <> [] ->
          Some
            (fun service ->
              List.iter
                (fun (s, stuck) ->
                  Ctrl.set_fault service ~shard:s
                    (Some (Fault.create ~stuck ~seed:(seed lxor (0x5a17 + s)) ())))
                banks)
      | _, fs ->
          List.iter
            (fun (s, fspec) ->
              if s < 0 || s >= shards then
                bad "--fault shard %d out of range (0..%d)" s (shards - 1);
              List.iter
                (fun a ->
                  if a < 0 || a >= capacity then
                    bad
                      "--fault %d:stuck=%d is outside the shard's table \
                       (capacity %d, addresses 0..%d)"
                      s a capacity (capacity - 1))
                fspec.Fault.stuck)
            fs;
          Some
            (fun service ->
              List.iter
                (fun (s, fspec) ->
                  Ctrl.set_fault service ~shard:s
                    (Some (Fault.of_spec fspec ~seed:(seed lxor (0x5a17 + s)))))
                fs)
    in
    let r =
      Churn.run ~policy ~refresh_every ~resil ?journal ~domains ?configure
        ~chaos ?stop_after_flushes:crash_after spec
    in
    Format.printf
      "churn %s: %d shards x %d slots, %d preloaded, %d ops in windows of %d \
       (%d domain%s)@."
      (Dataset.to_string kind) shards capacity n ops batch domains
      (if domains = 1 then "" else "s");
    Format.printf "submitted %d  coalesced %d  applied %d  failed %d  \
                   flushes %d@."
      r.Churn.submitted r.Churn.coalesced r.Churn.applied r.Churn.failed
      r.Churn.flushes;
    if r.Churn.retries + r.Churn.shed + r.Churn.breaker_opens > 0 then
      Format.printf "retries %d  shed %d  breaker opens %d@." r.Churn.retries
        r.Churn.shed r.Churn.breaker_opens;
    if r.Churn.diverted + r.Churn.rebalanced + r.Churn.restarts > 0 then
      Format.printf "diverted %d  rebalanced %d  restarts %d  residual \
                     diverted %d@."
        r.Churn.diverted r.Churn.rebalanced r.Churn.restarts
        (Ctrl.diverted_count r.Churn.service);
    if dead_frac > 0.0 then begin
      let seeded =
        List.fold_left (fun acc (_, b) -> acc + List.length b) 0 dead_banks
      in
      let degraded_diverted = ref 0 in
      for s = 0 to Ctrl.shards r.Churn.service - 1 do
        degraded_diverted :=
          !degraded_diverted
          + Telemetry.degraded_diverted
              (Shard.telemetry (Ctrl.shard r.Churn.service s))
      done;
      Format.printf
        "degraded: %d stuck rows seeded, %d dead discovered, \
         degraded-diverted %d, shed %d@."
        seeded
        (Ctrl.dead_rows r.Churn.service)
        !degraded_diverted r.Churn.shed
    end;
    Format.printf "flush wall (ms): %a@.@." Measure.pp_summary
      r.Churn.flush_wall_ms;
    pp_latency_line r.Churn.service;
    Ctrl.pp_stats Format.std_formatter r.Churn.service;
    (match json with
    | None -> ()
    | Some path ->
        let scenario =
          Printf.sprintf "ctrl-%s-%dx%d" (Dataset.to_string kind) shards
            capacity
        in
        ctrl_json path r.Churn.service ~scenario ~seed);
    match crash_after with
    | Some _ ->
        Ctrl.simulate_crash ~mid_drain:crash_mid r.Churn.service;
        Format.printf
          "@.simulated crash after %d flushes (%d ops still queued); recover \
           with: fastrule_cli ctrl --journal %s --recover@."
          r.Churn.flushes
          (Ctrl.pending r.Churn.service)
          (Option.value journal ~default:"DIR");
        exit 42
    | None ->
        (* Under --dead-frac, per-attempt write failures are the expected
           discovery cost (the retry pass re-drives them); the drill's
           pass/fail signal is shedding. *)
        let healthy =
          if dead_frac > 0.0 then r.Churn.shed = 0 else r.Churn.failed = 0
        in
        exit (if allow_failures || healthy then 0 else 1)
  in
  let shards_arg =
    Arg.(
      value & opt int 4
      & info [ "s"; "shards" ] ~docv:"N" ~doc:"Number of switch shards.")
  in
  let capacity_arg =
    Arg.(
      value & opt int 2_000
      & info [ "c"; "capacity" ] ~docv:"SLOTS"
          ~doc:"TCAM slots per shard.")
  in
  let ops_arg =
    Arg.(
      value & opt int 10_000
      & info [ "u"; "updates" ] ~docv:"COUNT"
          ~doc:"Flow-mods in the churn stream.")
  in
  let batch_arg =
    Arg.(
      value & opt int 64
      & info [ "b"; "batch" ] ~docv:"OPS"
          ~doc:"Ops per flush window (queues drain every BATCH ops).")
  in
  let policy_arg =
    Arg.(
      value
      & opt policy_conv Partition.Hash_id
      & info [ "p"; "policy" ] ~docv:"POLICY"
          ~doc:"Routing policy: $(b,hash) or $(b,prefix:<k>) (top k \
                destination-IP bits).")
  in
  let refresh_arg =
    Arg.(
      value & opt int 1
      & info [ "refresh-every" ] ~docv:"K"
          ~doc:"Metric refresh cadence inside a drained batch; 1 keeps \
                per-op movement quality, larger trades extra TCAM moves \
                for less firmware bookkeeping.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:"Also dump per-shard telemetry as JSON.")
  in
  let journal_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"DIR"
          ~doc:"Write-ahead journal directory (created if missing): every \
                accepted submit goes durable before the hardware sees it.")
  in
  let recover_arg =
    Arg.(
      value & flag
      & info [ "recover" ]
          ~doc:"Rebuild the service from --journal DIR (checkpoint + replay \
                + requeued suffix), flush the requeued intent, and report. \
                Exits non-zero on recovery warnings or flush failures.")
  in
  let fault_arg =
    Arg.(
      value
      & opt_all fault_spec_conv []
      & info [ "fault" ] ~docv:"SHARD:SPEC"
          ~doc:"Install a fault plan on one shard's agent, e.g. \
                $(b,0:p=0.2,max=4) or $(b,1:p=1) — the supervisor's retry \
                and circuit-breaker paths under test.  Repeatable.")
  in
  let crash_after_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "crash-after" ] ~docv:"FLUSHES"
          ~doc:"Stop the stream after this many flushes and simulate a \
                process crash (journal left on disk, exit 42).  Requires \
                --journal.")
  in
  let crash_mid_arg =
    Arg.(
      value & flag
      & info [ "crash-mid-drain" ]
          ~doc:"With --crash-after: die after the begin markers go durable \
                but before any commit — the worst crash point.")
  in
  let allow_failures_arg =
    Arg.(
      value & flag
      & info [ "allow-failures" ]
          ~doc:"Exit 0 even when the stream reports failed ops (rejections \
                are expected under injected faults and tight capacity).")
  in
  let failover_arg =
    Arg.(
      value & flag
      & info [ "failover" ]
          ~doc:"Breaker-aware failover routing: new rule ids headed for a \
                quarantined shard divert to healthy siblings and drain back \
                home after the breaker closes.")
  in
  let slow_call_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "slow-call" ] ~docv:"MS"
          ~doc:"Slow-call breaker policy: a damage-free drain averaging \
                more than MS modelled hardware ms per op counts against \
                the shard's breaker (default: disabled).")
  in
  let slow_factor_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "slow-factor" ] ~docv:"K"
          ~doc:"Adaptive slow-call breaker policy: judge each drain against \
                the shard's own p99 per-op hardware latency times K (from \
                its telemetry histogram), so the threshold tracks drift. \
                --slow-call overrides with a fixed bound.")
  in
  let chaos_arg =
    Arg.(
      value & opt int 0
      & info [ "chaos" ] ~docv:"EVENTS"
          ~doc:"Schedule this many seeded fault-domain events (slow faults, \
                write failures, restarts, heals) across the run.  Restart \
                events need --journal.")
  in
  let domains_arg =
    Arg.(
      value
      & opt int (Pool.recommended ())
      & info [ "domains" ] ~docv:"N"
          ~doc:"Executors per flush: shards drain concurrently on N OCaml \
                domains with a deterministic join (results are identical \
                for every N; default: the runtime's recommended domain \
                count).  1 = strictly sequential.")
  in
  let dead_frac_arg =
    Arg.(
      value & opt float 0.0
      & info [ "dead-frac" ] ~docv:"F"
          ~doc:"Degraded-hardware chaos drill: before the stream starts, \
                condemn a seeded random fraction F of every shard's rows \
                (stuck-at-write: writes fail, erases still work).  The \
                firmware must discover the holes, pack around them, and \
                finish with nothing shed.  Incompatible with --fault.")
  in
  Cmd.v
    (Cmd.info "ctrl"
       ~doc:"Drive the sharded control-plane service with a seeded churn \
             stream and report per-shard telemetry (exit 1 on failed ops \
             unless --allow-failures).")
    Term.(
      const run $ kind_arg $ n_arg $ seed_arg $ shards_arg $ capacity_arg
      $ ops_arg $ batch_arg $ policy_arg $ refresh_arg $ json_arg
      $ journal_arg $ recover_arg $ fault_arg $ crash_after_arg $ crash_mid_arg
      $ allow_failures_arg $ failover_arg $ slow_call_arg $ slow_factor_arg
      $ chaos_arg $ domains_arg $ dead_frac_arg)

(* --- journal --------------------------------------------------------- *)

let journal_dir_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "journal" ] ~docv:"DIR" ~doc:"Journal directory to inspect.")

let journal_stat_cmd =
  let human_bytes b =
    if b >= 1_048_576 then Printf.sprintf "%.1f MiB" (float_of_int b /. 1_048_576.)
    else if b >= 1_024 then Printf.sprintf "%.1f KiB" (float_of_int b /. 1_024.)
    else Printf.sprintf "%d B" b
  in
  (* One service journal: header line plus per-shard stats.  Returns
     whether anything failed; [indent] nests it under a fleet tree. *)
  let stat_service ?(indent = "") dir =
    match Journal.read_meta ~dir with
    | Error e ->
        Format.printf "%sjournal %s: ERROR %s@." indent dir e;
        true
    | Ok meta ->
        Format.printf
          "%sjournal %s: %d shard(s), capacity %d, policy %s, scheduler %s%s@."
          indent dir meta.Journal.shards meta.Journal.capacity
          meta.Journal.policy meta.Journal.kind
          (if meta.Journal.verify then ", verify on" else "");
        let failed = ref false in
        for s = 0 to meta.Journal.shards - 1 do
          match Journal.stat ~dir ~shard:s with
          | Error e ->
              failed := true;
              Format.printf "%s  shard %d: ERROR %s@." indent s e
          | Ok st ->
              Format.printf
                "%s  shard %d: WAL %s (age %.1f s), %d drain(s) total, %d \
                 committed since checkpoint, %d pending mod(s)%s@."
                indent s
                (human_bytes st.Journal.wal_bytes)
                st.Journal.wal_age_s st.Journal.total_drains
                st.Journal.committed_drains st.Journal.pending_mods
                (if st.Journal.interrupted then ", INTERRUPTED (mid-drain)"
                 else "");
              List.iter
                (fun (upto, file, bytes) ->
                  Format.printf "%s    checkpoint upto seq %d: %s (%s)@."
                    indent upto file (human_bytes bytes))
                st.Journal.checkpoints
        done;
        !failed
  in
  let run dir =
    if Net.is_fleet_journal dir then begin
      (* fleet rollout tree: the rollout log's round ledger up top, then
         every node's service journal aggregated underneath *)
      match Net.rollout_stat ~journal:dir () with
      | Error e ->
          Format.eprintf "fastrule_cli: %s@." e;
          exit 1
      | Ok rs ->
          Format.printf "fleet journal %s: %d node(s), %d flow(s) stamped@."
            dir rs.Net.rs_nodes rs.Net.rs_stamped;
          (if rs.Net.rs_state = "idle" then
             Format.printf "  rollout: none recorded@."
           else
             Format.printf
               "  rollout: %s (batch %d, %d -> %d flows); rounds %d begun / \
                %d committed, rollback %d begun / %d committed@."
               rs.Net.rs_state rs.Net.rs_batch rs.Net.rs_old_flows
               rs.Net.rs_new_flows rs.Net.rs_begun rs.Net.rs_committed
               rs.Net.rs_rb_begun rs.Net.rs_rb_committed);
          Format.printf "  last consistent boundary: %s@."
            rs.Net.rs_last_boundary;
          let failed = ref false in
          for node = 0 to rs.Net.rs_nodes - 1 do
            let node_dir =
              Filename.concat dir (Printf.sprintf "node-%d" node)
            in
            Format.printf "  node %d:@." node;
            if stat_service ~indent:"    " node_dir then failed := true
          done;
          exit (if !failed then 1 else 0)
    end
    else begin
      match Journal.read_meta ~dir with
      | Error e ->
          Format.eprintf "fastrule_cli: %s@." e;
          exit 1
      | Ok _ -> exit (if stat_service dir then 1 else 0)
    end
  in
  Cmd.v
    (Cmd.info "stat"
       ~doc:"Per-shard journal health: WAL and checkpoint sizes, ages, \
             drain and pending-mod counts.  A fleet rollout tree \
             ($(b,fleet.meta)) additionally reports the rollout ledger — \
             rounds begun/committed (forward and rollback) and the last \
             consistent boundary — then every node's journal.")
    Term.(const run $ journal_dir_arg)

let journal_cmd =
  Cmd.group
    (Cmd.info "journal"
       ~doc:"Inspect a write-ahead journal directory without touching it.")
    [ journal_stat_cmd ]

(* --- conform --------------------------------------------------------- *)

let break_conv =
  let scheds = [ "naive"; "ruletris"; "fr-o"; "fr-sd"; "fr-sb" ] in
  let parse s =
    let split =
      match String.index_opt s ':' with
      | None -> Ok (s, Sabotage.Reverse)
      | Some i -> (
          let m = String.sub s (i + 1) (String.length s - i - 1) in
          match Sabotage.mode_of_string m with
          | Some mode -> Ok (String.sub s 0 i, mode)
          | None ->
              Error (`Msg (Printf.sprintf "unknown sabotage mode %S" m)))
    in
    match split with
    | Error _ as e -> e
    | Ok (sched, mode) ->
        let sched = String.lowercase_ascii sched in
        if List.mem sched scheds then Ok (sched, mode)
        else
          Error
            (`Msg
               (Printf.sprintf "unknown scheduler %S (want one of %s)" sched
                  (String.concat ", " scheds)))
  in
  Arg.conv
    ( parse,
      fun ppf (s, m) ->
        Format.fprintf ppf "%s:%s" s (Sabotage.mode_to_string m) )

let conform_cmd =
  let run kind n seed events pool capacity probes fault fault_max break_ record
      save replay shrink out crash_at crash_mid crash_batch failover_shard
      fo_shards degraded_frac strict domains capture =
    let bad fmt =
      Format.kasprintf
        (fun m ->
          Format.eprintf "fastrule_cli: %s@." m;
          exit 2)
        fmt
    in
    if fault < 0. || fault > 1. then bad "--fault must be in [0,1] (got %g)" fault;
    if crash_batch < 1 then bad "--crash-batch must be >= 1 (got %d)" crash_batch;
    (match domains with
    | Some d when d < 1 -> bad "--domains must be >= 1 (got %d)" d
    | _ -> ());
    (* A bundle replay re-runs the captured differential mode with the
       captured parameters — the offline half of --capture. *)
    (match replay with
    | Some path when Bundle.is_bundle path -> (
        match Bundle.load path with
        | Error e -> bad "%s" e
        | Ok (info, trace) ->
            Format.printf "replaying %a@." Bundle.pp_info info;
            if info.Bundle.mode = "failover" then begin
              let slow_ms =
                if info.Bundle.slow_ms > 0.0 then info.Bundle.slow_ms else 8.0
              in
              let r =
                Oracle.run_failover ~probes ~batch:info.Bundle.batch
                  ~shards:(max 2 info.Bundle.shards)
                  ~fault_shard:info.Bundle.fault_shard ~slow_ms ?domains
                  ?capture trace
              in
              Oracle.pp_failover_report Format.std_formatter r;
              exit (if Oracle.failover_clean r then 0 else 1)
            end
            else if info.Bundle.mode = "degraded" then begin
              (* the stuck bank re-derives from the trace seed, so the
                 default dead fraction reproduces the captured run *)
              let r =
                Oracle.run_degraded ~probes ~batch:info.Bundle.batch
                  ~shards:(max 2 info.Bundle.shards)
                  ~fault_shard:info.Bundle.fault_shard ?domains ?capture trace
              in
              Oracle.pp_degraded_report Format.std_formatter r;
              exit (if Oracle.degraded_clean r then 0 else 1)
            end
            else begin
              let r =
                Oracle.run_crash ~probes ~batch:info.Bundle.batch
                  ~mid_drain:info.Bundle.mid_drain ~at:info.Bundle.at ?domains
                  ?capture trace
              in
              Oracle.pp_crash_report Format.std_formatter r;
              exit (if Oracle.crash_clean r then 0 else 1)
            end)
    | _ -> ());
    let trace =
      match replay with
      | Some path -> (
          match Trace.load path with
          | Ok t -> t
          | Error e -> bad "cannot load trace %s: %s" path e)
      | None ->
          let pool = Option.value pool ~default:(2 * n) in
          let capacity = Option.value capacity ~default:(4 * n) in
          Trace.generate ~kind ~seed ~initial:n ~pool ~capacity ~events ()
    in
    (match crash_at with
    | Some at ->
        (* Crash-recovery differential mode: kill a journaled service at
           op [at] and hold the recovered state to the committed prefix,
           for every scheduler kind. *)
        let r =
          Oracle.run_crash ~probes ~batch:crash_batch ~mid_drain:crash_mid ~at
            ?domains ?capture trace
        in
        Oracle.pp_crash_report Format.std_formatter r;
        exit (if Oracle.crash_clean r then 0 else 1)
    | None -> ());
    (match failover_shard with
    | Some fs ->
        if fo_shards < 2 then bad "--shards must be >= 2 (got %d)" fo_shards;
        if fs < 0 || fs >= fo_shards then
          bad "--failover shard %d out of range (0..%d)" fs (fo_shards - 1);
        let r =
          Oracle.run_failover ~probes ~batch:crash_batch ~shards:fo_shards
            ~fault_shard:fs ?domains ?capture trace
        in
        Oracle.pp_failover_report Format.std_formatter r;
        exit (if Oracle.failover_clean r then 0 else 1)
    | None -> ());
    (match degraded_frac with
    | Some frac ->
        if fo_shards < 2 then bad "--shards must be >= 2 (got %d)" fo_shards;
        if frac <= 0.0 || frac >= 1.0 then
          bad "--degraded must be in (0, 1) (got %g)" frac;
        let r =
          Oracle.run_degraded ~probes ~batch:crash_batch ~shards:fo_shards
            ~dead_frac:frac ?domains ?capture trace
        in
        Oracle.pp_degraded_report Format.std_formatter r;
        let vacuous =
          List.filter
            (fun c -> c.Oracle.dg_dead_max = 0)
            r.Oracle.degraded_columns
        in
        List.iter
          (fun c ->
            Format.printf
              "%s: %s never wrote into the stuck bank — vacuous \
               certification (densify the trace or raise --degraded)@."
              (if strict then "FAIL" else "WARNING")
              c.Oracle.degraded_scheduler)
          vacuous;
        exit
          (if Oracle.degraded_clean r && ((not strict) || vacuous = []) then 0
           else 1)
    | None -> ());
    let config =
      {
        Oracle.default_config with
        Oracle.probes;
        record = record || save <> None;
        sabotage = break_;
        fault_prob = fault;
        max_failures = fault_max;
      }
    in
    let report = Oracle.run ~config trace in
    Oracle.pp_report Format.std_formatter report;
    (match save with
    | Some path ->
        Trace.save report.Oracle.trace path;
        Format.printf "wrote trace (with recordings) to %s@." path
    | None -> ());
    let ok = Oracle.clean report in
    if (not ok) && shrink then begin
      let shrink_config = { config with Oracle.record = false } in
      let failing t = not (Oracle.clean (Oracle.run ~config:shrink_config t)) in
      let small, runs =
        Shrink.minimize ~failing (Trace.with_events trace trace.Trace.events)
      in
      Format.printf "@.shrunk to %d events (from %d) in %d oracle runs:@."
        (List.length small.Trace.events)
        (List.length trace.Trace.events)
        runs;
      List.iteri
        (fun i ev -> Format.printf "  %2d: %a@." i Trace.pp_event ev)
        small.Trace.events;
      match out with
      | Some path ->
          Trace.save small path;
          Format.printf "wrote reproducer to %s (replay with: fastrule_cli \
                         conform --replay %s)@."
            path path
      | None -> ()
    end;
    exit (if ok then 0 else 1)
  in
  let events_arg =
    Arg.(
      value & opt int 200
      & info [ "e"; "events" ] ~docv:"COUNT" ~doc:"Workload events to generate.")
  in
  let pool_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "pool" ] ~docv:"N" ~doc:"Rule pool size (default 2n).")
  in
  let capacity_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "c"; "capacity" ] ~docv:"SLOTS"
          ~doc:"TCAM slots per agent (default 4n).")
  in
  let probes_arg =
    Arg.(
      value & opt int 8
      & info [ "probes" ] ~docv:"K"
          ~doc:"Lookup probes per event (TCAM winner vs linear scan).")
  in
  let fault_arg =
    Arg.(
      value & opt float 0.
      & info [ "fault" ] ~docv:"P"
          ~doc:"Inject write failures with this probability on the \
                FastRule agents.")
  in
  let fault_max_arg =
    Arg.(
      value & opt int (-1)
      & info [ "fault-max" ] ~docv:"N"
          ~doc:"Injection budget per agent (-1: unlimited).")
  in
  let break_arg =
    Arg.(
      value
      & opt_all break_conv []
      & info [ "break" ] ~docv:"SCHED[:MODE]"
          ~doc:"Sabotage a scheduler (reverse or drop-first) — the oracle \
                must catch it.  Repeatable.")
  in
  let record_arg =
    Arg.(
      value & flag
      & info [ "record" ]
          ~doc:"Embed each scheduler's emitted sequences in the report \
                trace (implied by --save).")
  in
  let save_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"PATH" ~doc:"Write the trace after the run.")
  in
  let replay_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"PATH"
          ~doc:"Replay a saved trace instead of generating one; embedded \
                recordings are checked for scheduler determinism.")
  in
  let shrink_arg =
    Arg.(
      value & flag
      & info [ "shrink" ]
          ~doc:"On divergence, minimize the trace to a small reproducer.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"PATH"
          ~doc:"Where to write the shrunk reproducer trace.")
  in
  let crash_at_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "crash-at" ] ~docv:"K"
          ~doc:"Crash-recovery mode: drive the trace through a journaled \
                single-shard service per scheduler, kill it after K events, \
                recover, and check the recovered state against the committed \
                prefix (exit 1 on divergence).")
  in
  let crash_mid_arg =
    Arg.(
      value & flag
      & info [ "crash-mid-drain" ]
          ~doc:"With --crash-at: crash after the begin markers are durable \
                but before any commit.")
  in
  let crash_batch_arg =
    Arg.(
      value & opt int 4
      & info [ "crash-batch" ] ~docv:"OPS"
          ~doc:"Flush cadence in crash-recovery mode.")
  in
  let failover_shard_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "failover" ] ~docv:"SHARD"
          ~doc:"Failover differential mode: drive the trace through a \
                multi-shard failover-enabled service with a persistent \
                latency fault on SHARD, heal, and check the converged \
                state against a never-faulted twin (exit 1 on divergence).")
  in
  let fo_shards_arg =
    Arg.(
      value & opt int 3
      & info [ "shards" ] ~docv:"N"
          ~doc:"Shard count in failover/degraded mode (>= 2).")
  in
  let degraded_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "degraded" ] ~docv:"FRAC"
          ~doc:"Degraded-hardware differential mode: seed a stuck-at-write \
                bank covering FRAC of shard 0's rows, drive the trace \
                through every scheduler on a failover-enabled service \
                (lookups checked against the semantic scan at every flush), \
                heal the hardware, probe-drill, and check the converged \
                state against a never-faulted twin (exit 1 on divergence or \
                an untouched bank).")
  in
  let strict_arg =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:"With --degraded: treat a vacuous certification (a scheduler \
                that never wrote into the stuck bank) as a hard failure \
                instead of a warning.  CI passes this so a trace that stops \
                exercising the dead rows fails loudly rather than silently \
                certifying nothing.")
  in
  let domains_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:"Run the crash/failover services with N flush executors — \
                with N > 1 a clean oracle is the proof that the parallel \
                drain path is observationally equivalent to the sequential \
                one (default: FASTRULE_DOMAINS or 1).")
  in
  let capture_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "capture" ] ~docv:"DIR"
          ~doc:"On divergence in crash or failover mode, write a replayable \
                bundle (trace + parameters + journal copy) under DIR; \
                replay it with --replay DIR/<bundle>.")
  in
  Cmd.v
    (Cmd.info "conform"
       ~doc:"Differential conformance: one seeded workload through every \
             scheduler, cross-checked event by event (exit 1 on \
             divergence).")
    Term.(
      const run $ kind_arg $ n_arg $ seed_arg $ events_arg $ pool_arg
      $ capacity_arg $ probes_arg $ fault_arg $ fault_max_arg $ break_arg
      $ record_arg $ save_arg $ replay_arg $ shrink_arg $ out_arg
      $ crash_at_arg $ crash_mid_arg $ crash_batch_arg $ failover_shard_arg
      $ fo_shards_arg $ degraded_arg $ strict_arg $ domains_arg $ capture_arg)

(* --- cache ------------------------------------------------------------ *)

let cache_policy_conv =
  let parse s =
    match Cache_policy.kind_of_string s with
    | Some k -> Ok k
    | None ->
        Error
          (`Msg
             (Printf.sprintf
                "unknown cache policy %S (lru, fdrc or fdrc:<misses>)" s))
  in
  Arg.conv
    (parse, fun ppf k -> Format.pp_print_string ppf (Cache_policy.kind_to_string k))

let algo_conv =
  let parse s =
    match Firmware.algo_kind_of_string s with
    | Some k -> Ok k
    | None -> Error (`Msg (Printf.sprintf "unknown scheduler %S" s))
  in
  Arg.conv
    (parse, fun ppf k -> Format.pp_print_string ppf (Firmware.algo_kind_name k))

let cache_cmd =
  let run kind n seed flows skew accesses slots shards flush_every policy algo
      oracle no_check probes domains json =
    let bad fmt =
      Format.kasprintf
        (fun m ->
          Format.eprintf "fastrule_cli: %s@." m;
          exit 2)
        fmt
    in
    if n < 1 then bad "-n must be >= 1 (got %d)" n;
    if flows < 1 then bad "--flows must be >= 1 (got %d)" flows;
    if skew < 0.0 || not (Float.is_finite skew) then
      bad "--skew must be finite and >= 0 (got %g)" skew;
    if accesses < 1 then bad "--accesses must be >= 1 (got %d)" accesses;
    if slots < 1 then bad "--slots must be >= 1 (got %d)" slots;
    if shards < 1 then bad "--shards must be >= 1 (got %d)" shards;
    if flush_every < 1 then bad "--batch must be >= 1 (got %d)" flush_every;
    if probes < 0 then bad "--probes must be >= 0 (got %d)" probes;
    (match domains with
    | Some d when d < 1 -> bad "--domains must be >= 1 (got %d)" d
    | _ -> ());
    let spec =
      {
        Cache_driver.kind;
        n;
        seed;
        flows;
        skew;
        accesses;
        slots;
        shards;
        flush_every;
        policy;
      }
    in
    let results =
      if oracle then Cache_driver.run_all ?domains ~probes spec
      else [ Cache_driver.run ~algo ?domains ~check:(not no_check) ~probes spec ]
    in
    List.iter
      (fun (r : Cache_driver.result) ->
        Cache_driver.pp_result Format.std_formatter r;
        List.iter
          (fun (d : Cache_driver.divergence) ->
            Format.printf "  DIVERGENCE at %d (%s): expected %s, got %s@."
              d.Cache_driver.at d.Cache_driver.where d.Cache_driver.expected
              d.Cache_driver.got)
          r.Cache_driver.divergences)
      results;
    (* The satellite one-liner: cache counters + the latency gauge of the
       last run's service, without digging through JSON. *)
    (match List.rev results with
    | last :: _ ->
        Format.printf "cache: hit %.1f%%  admitted %d  evicted %d  \
                       skipped %d  repairs %d  flushes %d@."
          (100.0 *. last.Cache_driver.hit_rate)
          last.Cache_driver.admitted last.Cache_driver.evicted
          last.Cache_driver.admit_skipped last.Cache_driver.repairs
          last.Cache_driver.rounds
    | [] -> ());
    (match json with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc
          (Telemetry.Json.to_string
             (Telemetry.Json.List (List.map Cache_driver.result_json results)));
        output_char oc '\n';
        close_out oc;
        Format.printf "wrote cache results to %s@." path);
    let dirty =
      List.exists
        (fun (r : Cache_driver.result) -> r.Cache_driver.divergences <> [])
        results
    in
    if oracle then
      Format.printf "cache oracle: %d scheduler legs, %s@."
        (List.length results)
        (if dirty then "DIVERGED" else "all conformant");
    exit (if dirty then 1 else 0)
  in
  let flows_arg =
    Arg.(
      value & opt int 100_000
      & info [ "flows" ] ~docv:"COUNT"
          ~doc:"Flow-universe size (flows are lazy: millions are cheap).")
  in
  let skew_arg =
    Arg.(
      value & opt float 1.1
      & info [ "skew" ] ~docv:"S"
          ~doc:"Zipf exponent of the flow popularity (0 = uniform).")
  in
  let accesses_arg =
    Arg.(
      value & opt int 4_000
      & info [ "a"; "accesses" ] ~docv:"COUNT" ~doc:"Packets to stream.")
  in
  let slots_arg =
    Arg.(
      value & opt int 128
      & info [ "slots" ] ~docv:"N"
          ~doc:"Cache capacity in rules (the whole TCAM budget).")
  in
  let shards_arg =
    Arg.(
      value & opt int 2
      & info [ "s"; "shards" ] ~docv:"N" ~doc:"TCAM shards behind the tier.")
  in
  let batch_arg =
    Arg.(
      value & opt int 64
      & info [ "b"; "batch" ] ~docv:"ACCESSES"
          ~doc:"Maintenance cadence: buffered admissions/evictions flush \
                every BATCH accesses.")
  in
  let policy_arg =
    Arg.(
      value
      & opt cache_policy_conv Cache_policy.Lru
      & info [ "p"; "policy" ] ~docv:"POLICY"
          ~doc:"Admission/eviction policy: $(b,lru), $(b,fdrc) or \
                $(b,fdrc:<misses>).")
  in
  let algo_arg =
    Arg.(
      value
      & opt algo_conv (Firmware.FR_O Store.Bit_backend)
      & info [ "algo" ] ~docv:"SCHED"
          ~doc:"Scheduler for the cache TCAM (ignored with --oracle).")
  in
  let oracle_arg =
    Arg.(
      value & flag
      & info [ "oracle" ]
          ~doc:"Conformance sweep: replay the same stream through every \
                scheduler with full checking; exit 1 on any divergence.")
  in
  let no_check_arg =
    Arg.(
      value & flag
      & info [ "no-check" ]
          ~doc:"Skip per-hit verification (bench mode; meaningless with \
                --oracle).")
  in
  let probes_arg =
    Arg.(
      value & opt int 8
      & info [ "probes" ] ~docv:"K"
          ~doc:"Oracle probes at each flush boundary (including \
                mid-eviction).")
  in
  let domains_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:"Flush executors for the tier's service (default: \
                FASTRULE_DOMAINS or 1).")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH" ~doc:"Dump the per-run results as JSON.")
  in
  Cmd.v
    (Cmd.info "cache"
       ~doc:"TCAM-as-cache tier under Zipf flow traffic: dependency-safe \
             admission/eviction over a software backing table, with a \
             cached-vs-full-table conformance oracle.")
    Term.(
      const run $ kind_arg $ n_arg $ seed_arg $ flows_arg $ skew_arg
      $ accesses_arg $ slots_arg $ shards_arg $ batch_arg $ policy_arg
      $ algo_arg $ oracle_arg $ no_check_arg $ probes_arg $ domains_arg
      $ json_arg)

(* --- plane ------------------------------------------------------------ *)

let plane_cmd =
  let run kind n seed flows skew ops shards capacity batch readers min_lookups
      rebuild_every algo sweep no_oracle events probes max_p99_ms domains json =
    let bad fmt =
      Format.kasprintf
        (fun m ->
          Format.eprintf "fastrule_cli: %s@." m;
          exit 2)
        fmt
    in
    if n < 1 then bad "-n must be >= 1 (got %d)" n;
    if flows < 1 then bad "--flows must be >= 1 (got %d)" flows;
    if skew < 0.0 || not (Float.is_finite skew) then
      bad "--skew must be finite and >= 0 (got %g)" skew;
    if ops < 1 then bad "--ops must be >= 1 (got %d)" ops;
    if shards < 1 then bad "--shards must be >= 1 (got %d)" shards;
    if capacity < 1 then bad "--capacity must be >= 1 (got %d)" capacity;
    if batch < 1 then bad "--batch must be >= 1 (got %d)" batch;
    if readers < 1 then bad "--readers must be >= 1 (got %d)" readers;
    if min_lookups < 1 then bad "--min-lookups must be >= 1 (got %d)" min_lookups;
    if rebuild_every < 1 then
      bad "--rebuild-every must be >= 1 (got %d)" rebuild_every;
    if events < 0 then bad "--events must be >= 0 (got %d)" events;
    if probes < 1 then bad "--probes must be >= 1 (got %d)" probes;
    (match domains with
    | Some d when d < 1 -> bad "--domains must be >= 1 (got %d)" d
    | _ -> ());
    let spec =
      {
        Plane.kind;
        n;
        seed;
        flows;
        skew;
        ops;
        shards;
        capacity;
        batch;
        readers;
        min_lookups;
        rebuild_every;
      }
    in
    let results =
      if sweep then Plane.run_all ?domains spec
      else [ Plane.run ~algo ?domains spec ]
    in
    List.iter (fun r -> Plane.pp_result Format.std_formatter r) results;
    let disagreements =
      List.fold_left (fun acc (r : Plane.result) -> acc + r.Plane.disagree) 0
        results
    in
    if disagreements > 0 then
      Format.printf
        "plane: %d TCAM-vs-software lookup disagreements (BUG)@." disagreements;
    let p99_breach =
      if max_p99_ms <= 0.0 then None
      else
        List.find_map
          (fun (r : Plane.result) ->
            let worst =
              Float.max r.Plane.tcam_lat.Plane.p99 r.Plane.soft_lat.Plane.p99
            in
            if worst > max_p99_ms *. 1e6 then
              Some (Firmware.algo_kind_name r.Plane.algo, worst)
            else None)
          results
    in
    (match p99_breach with
    | Some (name, worst) ->
        Format.printf "plane: p99 gate breached on %s (%.0f ns > %.0f ms)@."
          name worst max_p99_ms
    | None -> ());
    (* The mid-cascade proof: every snapshot a scheduler publishes while
       a flow-mod cascades must answer like the semantic table before or
       after the mod — all five schedulers, exit 1 on divergence. *)
    let oracle_dirty =
      if no_oracle || events = 0 then false
      else begin
        let initial = min n 400 in
        let trace =
          Trace.generate ~kind ~seed ~initial ~pool:(2 * initial)
            ~capacity:(4 * initial) ~events ()
        in
        let report =
          Oracle.run ~config:{ Oracle.default_config with probes } trace
        in
        Oracle.pp_report Format.std_formatter report;
        if report.Oracle.snapshots_checked = 0 then begin
          Format.printf "plane oracle: no snapshots captured (BUG)@.";
          true
        end
        else not (Oracle.clean report)
      end
    in
    (match json with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc
          (Telemetry.Json.to_string
             (Telemetry.Json.List (List.map Plane.result_json results)));
        output_char oc '\n';
        close_out oc;
        Format.printf "wrote plane results to %s@." path);
    let dirty = disagreements > 0 || p99_breach <> None || oracle_dirty in
    Format.printf "plane: %d storm leg%s, %s@." (List.length results)
      (if List.length results = 1 then "" else "s")
      (if dirty then "DIVERGED" else "all conformant");
    exit (if dirty then 1 else 0)
  in
  let flows_arg =
    Arg.(
      value & opt int 20_000
      & info [ "flows" ] ~docv:"COUNT"
          ~doc:"Flow-universe size for the LGEN readers.")
  in
  let skew_arg =
    Arg.(
      value & opt float 1.1
      & info [ "skew" ] ~docv:"S"
          ~doc:"Zipf exponent of the flow popularity (0 = uniform).")
  in
  let ops_arg =
    Arg.(
      value & opt int 4_000
      & info [ "u"; "ops" ] ~docv:"COUNT"
          ~doc:"Update-storm flow-mods flushed while the readers measure.")
  in
  let shards_arg =
    Arg.(
      value & opt int 4
      & info [ "s"; "shards" ] ~docv:"N"
          ~doc:"Service shards; the readers target shard 0's snapshots.")
  in
  let capacity_arg =
    Arg.(
      value & opt int 1_500
      & info [ "c"; "capacity" ] ~docv:"SLOTS" ~doc:"TCAM slots per shard.")
  in
  let batch_arg =
    Arg.(
      value & opt int 32
      & info [ "b"; "batch" ] ~docv:"OPS" ~doc:"Storm ops per flush window.")
  in
  let readers_arg =
    Arg.(
      value & opt int 1
      & info [ "readers" ] ~docv:"N" ~doc:"LGEN reader domains.")
  in
  let min_lookups_arg =
    Arg.(
      value & opt int 2_000
      & info [ "min-lookups" ] ~docv:"N"
          ~doc:"Per-reader sample floor (keeps short storms measurable).")
  in
  let rebuild_every_arg =
    Arg.(
      value & opt int 256
      & info [ "rebuild-every" ] ~docv:"LOOKUPS"
          ~doc:"Software-backend recompile period, in lookups.")
  in
  let algo_arg =
    Arg.(
      value
      & opt algo_conv (Firmware.FR_O Store.Bit_backend)
      & info [ "algo" ] ~docv:"SCHED"
          ~doc:"Scheduler driving the storm (ignored with --sweep).")
  in
  let sweep_arg =
    Arg.(
      value & flag
      & info [ "sweep" ]
          ~doc:"Run the storm once per scheduler (five legs, same spec).")
  in
  let no_oracle_arg =
    Arg.(
      value & flag
      & info [ "no-oracle" ]
          ~doc:"Skip the mid-cascade snapshot-consistency oracle.")
  in
  let events_arg =
    Arg.(
      value & opt int 120
      & info [ "e"; "events" ] ~docv:"COUNT"
          ~doc:"Oracle trace length (0 also skips the oracle).")
  in
  let probes_arg =
    Arg.(
      value & opt int 8
      & info [ "probes" ] ~docv:"K" ~doc:"Oracle probe packets per event.")
  in
  let max_p99_arg =
    Arg.(
      value & opt float 0.0
      & info [ "max-p99-ms" ] ~docv:"MS"
          ~doc:"Sanity gate: exit 1 if any leg's lookup p99 exceeds this \
                many milliseconds (0 = off).")
  in
  let domains_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:"Flush executors for the storm (default: FASTRULE_DOMAINS \
                or 1).")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH" ~doc:"Dump the per-leg results as JSON.")
  in
  Cmd.v
    (Cmd.info "plane"
       ~doc:"Lookup-under-update data plane: wait-free snapshot lookups \
             with p50/p99/p999 measured while update storms flush, a \
             TupleChain-style software backend raced against the TCAM \
             emulation, and a mid-cascade snapshot-consistency oracle.")
    Term.(
      const run $ kind_arg $ n_arg $ seed_arg $ flows_arg $ skew_arg $ ops_arg
      $ shards_arg $ capacity_arg $ batch_arg $ readers_arg $ min_lookups_arg
      $ rebuild_every_arg $ algo_arg $ sweep_arg $ no_oracle_arg $ events_arg
      $ probes_arg $ max_p99_arg $ domains_arg $ json_arg)

(* --- net -------------------------------------------------------------- *)

let shape_conv =
  let parse s =
    match Net_topo.shape_of_string s with
    | Some sh -> Ok sh
    | None ->
        Error (`Msg (Printf.sprintf "unknown shape %S (line, ring or tree)" s))
  in
  Arg.conv
    (parse, fun ppf sh -> Format.pp_print_string ppf (Net_topo.shape_to_string sh))

let net_cmd =
  let run shape nodes flows reroute withdraw introduce waypoints seed batch
      shards capacity algo oracle chaos cases fault_specs abort_at hold
      deadline no_check samples domains journal json =
    let bad fmt =
      Format.kasprintf
        (fun m ->
          Format.eprintf "fastrule_cli: %s@." m;
          exit 2)
        fmt
    in
    if flows < 1 then bad "--flows must be >= 1 (got %d)" flows;
    if batch < 1 then bad "--batch must be >= 1 (got %d)" batch;
    if shards < 1 then bad "--shards must be >= 1 (got %d)" shards;
    if capacity < 1 then bad "--capacity must be >= 1 (got %d)" capacity;
    if samples < 1 then bad "--samples must be >= 1 (got %d)" samples;
    if cases < 1 then bad "--cases must be >= 1 (got %d)" cases;
    if deadline <= 0. then bad "--deadline must be > 0 (got %g)" deadline;
    List.iter
      (fun (name, v) -> if v < 0 then bad "--%s must be >= 0 (got %d)" name v)
      [ ("reroute", reroute); ("withdraw", withdraw);
        ("introduce", introduce); ("waypoints", waypoints) ];
    (match abort_at with
    | Some k when k < 0 -> bad "--abort-at must be >= 0 (got %d)" k
    | _ -> ());
    (match domains with
    | Some d when d < 1 -> bad "--domains must be >= 1 (got %d)" d
    | _ -> ());
    let faults =
      Net_scenario.schedule_of_faults
        (List.map
           (fun s ->
             match Net_scenario.fault_of_string s with
             | Ok f -> f
             | Error e -> bad "--node-fault: %s" e)
           fault_specs)
    in
    if chaos then begin
      (* seeded fleet-loss certification: random scenarios under random
         per-switch fault schedules, all five schedulers per case *)
      let r =
        Oracle.run_net_chaos ~cases ~samples ~shards ~capacity ?domains ~seed
          ()
      in
      Oracle.pp_chaos_report Format.std_formatter r;
      (match json with
      | None -> ()
      | Some path ->
          let oc = open_out path in
          output_string oc
            (Telemetry.Json.to_string
               (Telemetry.Json.Obj
                  [
                    ("mode", Telemetry.Json.Str "chaos");
                    ("seed", Telemetry.Json.Int seed);
                    ("cases", Telemetry.Json.Int cases);
                    ("shards", Telemetry.Json.Int shards);
                    ("capacity", Telemetry.Json.Int capacity);
                    ( "domains",
                      Telemetry.Json.Int
                        (match domains with
                        | Some d -> d
                        | None -> Ctrl.default_domains ()) );
                    ( "outcomes",
                      Telemetry.Json.Obj
                        (List.map
                           (fun (k, n) -> (k, Telemetry.Json.Int n))
                           r.Oracle.chaos_outcomes) );
                    ( "fingerprint",
                      Telemetry.Json.Str (Oracle.chaos_fingerprint r) );
                    ( "divergences",
                      Telemetry.Json.List
                        (List.map
                           (fun (d : Oracle.divergence) ->
                             Telemetry.Json.Obj
                               [
                                 ("event", Telemetry.Json.Int d.Oracle.event);
                                 ( "scheduler",
                                   Telemetry.Json.Str d.Oracle.scheduler );
                                 ( "detail",
                                   Telemetry.Json.Str d.Oracle.detail );
                               ])
                           r.Oracle.chaos_divergences) );
                    ("clean", Telemetry.Json.Bool (Oracle.chaos_clean r));
                    ("wall_ms", Telemetry.Json.Float r.Oracle.chaos_wall_ms);
                  ]));
          output_char oc '\n';
          close_out oc;
          Format.printf "wrote chaos results to %s@." path);
      exit (if Oracle.chaos_clean r then 0 else 1)
    end;
    let topo =
      try Net_topo.make shape nodes with Invalid_argument m -> bad "%s" m
    in
    let sc =
      try
        Net_scenario.make ~flows ~reroute ~withdraw ~introduce ~waypoints ~seed
          topo
      with Invalid_argument m -> bad "%s" m
    in
    let plan =
      match Net_scenario.plan ~batch sc with
      | Ok p -> p
      | Error e -> bad "cannot plan rollout: %s" e
    in
    let domains_used =
      match domains with Some d -> d | None -> Ctrl.default_domains ()
    in
    let params =
      [
        ("shape", Telemetry.Json.Str (Net_topo.shape_name topo));
        ("nodes", Telemetry.Json.Int (Net_topo.nodes topo));
        ("flows", Telemetry.Json.Int (List.length sc.old_policy));
        ("new_flows", Telemetry.Json.Int (List.length sc.new_policy));
        ("seed", Telemetry.Json.Int seed);
        ("batch", Telemetry.Json.Int batch);
        ("shards", Telemetry.Json.Int shards);
        ("capacity", Telemetry.Json.Int capacity);
        ("domains", Telemetry.Json.Int domains_used);
        ("rounds", Telemetry.Json.Int (Net_plan.num_rounds plan));
        ("total_mods", Telemetry.Json.Int (Net_plan.total_mods plan));
      ]
    in
    let dump obj =
      match json with
      | None -> ()
      | Some path ->
          let oc = open_out path in
          output_string oc (Telemetry.Json.to_string (Telemetry.Json.Obj obj));
          output_char oc '\n';
          close_out oc;
          Format.printf "wrote net results to %s@." path
    in
    if oracle then begin
      let r = Oracle.run_net ~batch ~samples ~shards ~capacity ?domains sc in
      Oracle.pp_net_report Format.std_formatter r;
      dump
        (params
        @ [
            ("mode", Telemetry.Json.Str "oracle");
            ( "columns",
              Telemetry.Json.List
                (List.map
                   (fun (c : Oracle.net_column) ->
                     Telemetry.Json.Obj
                       [
                         ("scheduler", Telemetry.Json.Str c.net_scheduler);
                         ("rounds", Telemetry.Json.Int c.net_rounds);
                         ("applied", Telemetry.Json.Int c.net_applied);
                         ("failed", Telemetry.Json.Int c.net_failed);
                         ("probes", Telemetry.Json.Int c.net_probes);
                       ])
                   r.Oracle.net_columns) );
            ( "divergences",
              Telemetry.Json.List
                (List.map
                   (fun (d : Oracle.divergence) ->
                     Telemetry.Json.Obj
                       [
                         ("event", Telemetry.Json.Int d.Oracle.event);
                         ("scheduler", Telemetry.Json.Str d.Oracle.scheduler);
                         ("detail", Telemetry.Json.Str d.Oracle.detail);
                       ])
                   r.Oracle.net_divergences) );
            ("clean", Telemetry.Json.Bool (Oracle.net_clean r));
            ("wall_ms", Telemetry.Json.Float r.Oracle.net_wall_ms);
          ]);
      exit (if Oracle.net_clean r then 0 else 1)
    end
    else begin
      (* pure-model pre-check: the planner's output is certified before a
         single flow-mod reaches a service *)
      if not no_check then begin
        match Net_check.check_plan ~samples ~seed plan with
        | Ok () -> ()
        | Error vs ->
            List.iter (fun v -> Format.eprintf "  INCONSISTENT: %s@." v) vs;
            bad "plan failed the transient-path check (%d violations)"
              (List.length vs)
      end;
      let fleet =
        Net.of_policy ~kind:algo ~shards ~capacity ?domains ?journal topo
          sc.old_policy
      in
      let supervision =
        if faults = [] && hold = None then None
        else
          Some
            {
              Net.default_supervision with
              deadline_ms = deadline;
              hold =
                (match hold with Some `Abort -> Net.Abort | _ -> Net.Wait);
              hold_budget =
                (match hold with Some `Abort -> 4 | _ -> 16);
              sup_seed = seed;
            }
      in
      let report =
        try
          Net.execute
            ?faults:(if faults = [] then None else Some faults)
            ?supervision ?abort_after_rounds:abort_at fleet plan
        with Invalid_argument m -> bad "%s" m
      in
      Format.printf "%a" Net_plan.pp plan;
      Format.printf "%a@." Net.pp_report report;
      (* compact every node's WAL into a rules checkpoint: the snapshot
         an aborted rollout leaves must be byte-identical to the
         pre-rollout one (the CI abort drill diffs them) *)
      if journal <> None then Net.checkpoint fleet;
      (* convergence target depends on the verdict: a completed rollout
         must land on the new policy, an aborted one byte-identically
         back on the old *)
      let expected_policy, expected_stamps, target =
        match report.Net.outcome with
        | Net.Aborted _ ->
            (sc.old_policy, Net_plan.stamps_before plan, "pre-rollout policy")
        | _ -> (sc.new_policy, Net_plan.stamps_after plan, "new policy")
      in
      let converged =
        Net.stamps fleet = expected_stamps
        &&
        let reference =
          Net_check.Model.of_policy topo
            ~version_of:(fun f ->
              List.assoc f.Net_policy.flow_id expected_stamps)
            expected_policy
        in
        List.for_all
          (fun node ->
            List.map (fun (r : Rule.t) -> r.id) (Net.rules fleet node)
            = List.map
                (fun (r : Rule.t) -> r.id)
                (Net_check.Model.rules reference node))
          (List.init (Net_topo.nodes topo) Fun.id)
      in
      let outcome_str =
        match report.Net.outcome with
        | Net.Completed -> "completed"
        | Net.Crashed -> "crashed"
        | Net.Held k -> Printf.sprintf "held@%d" k
        | Net.Aborted { at_round; rolled_back } ->
            Printf.sprintf "aborted@%d-%d" at_round rolled_back
      in
      Format.printf "net: %d rounds  %d mods  %d switches  %s@."
        report.Net.rounds_run report.Net.applied (Net_topo.nodes topo)
        (if converged then "converged on the " ^ target
         else "DID NOT converge");
      dump
        (params
        @ [
            ("mode", Telemetry.Json.Str "rollout");
            ("algo", Telemetry.Json.Str (Net.kind_name fleet));
            ("completed", Telemetry.Json.Bool report.Net.completed);
            ("outcome", Telemetry.Json.Str outcome_str);
            ("converged", Telemetry.Json.Bool converged);
            ("applied", Telemetry.Json.Int report.Net.applied);
            ("failed", Telemetry.Json.Int report.Net.failed);
            ("retried", Telemetry.Json.Int report.Net.retried);
            ("quarantines", Telemetry.Json.Int report.Net.quarantines);
            ("recovered", Telemetry.Json.Int report.Net.recovered);
            ("backoff_ms", Telemetry.Json.Float report.Net.backoff_ms);
            ( "faults",
              Telemetry.Json.List
                (List.map (fun s -> Telemetry.Json.Str s) fault_specs) );
            ("wall_ms", Telemetry.Json.Float report.Net.wall_ms);
            ( "per_round",
              Telemetry.Json.List
                (List.map
                   (fun (s : Net.round_stat) ->
                     Telemetry.Json.Obj
                       [
                         ("index", Telemetry.Json.Int s.Net.r_index);
                         ( "kind",
                           Telemetry.Json.Str (Net_plan.kind_to_string s.Net.r_kind)
                         );
                         ("switches", Telemetry.Json.Int s.Net.r_switches);
                         ("mods", Telemetry.Json.Int s.Net.r_mods);
                         ("wall_ms", Telemetry.Json.Float s.Net.r_wall_ms);
                       ])
                   report.Net.per_round) );
          ]);
      let ok =
        converged
        &&
        match report.Net.outcome with
        | Net.Completed -> report.Net.failed = 0
        | Net.Aborted _ -> true
        | Net.Crashed | Net.Held _ -> false
      in
      exit (if ok then 0 else 1)
    end
  in
  let shape_arg =
    Arg.(
      value
      & opt shape_conv Net_topo.Ring
      & info [ "shape" ] ~docv:"SHAPE"
          ~doc:"Topology shape: $(b,line), $(b,ring) or $(b,tree).")
  in
  let nodes_arg =
    Arg.(
      value & opt int 6
      & info [ "nodes" ] ~docv:"N" ~doc:"Switches in the fabric.")
  in
  let flows_arg =
    Arg.(
      value & opt int 6
      & info [ "flows" ] ~docv:"COUNT" ~doc:"Flows in the old policy.")
  in
  let reroute_arg =
    Arg.(
      value & opt int 2
      & info [ "reroute" ] ~docv:"COUNT"
          ~doc:"Flows the new policy moves to a different path.")
  in
  let withdraw_arg =
    Arg.(
      value & opt int 1
      & info [ "withdraw" ] ~docv:"COUNT"
          ~doc:"Flows the new policy drops entirely.")
  in
  let introduce_arg =
    Arg.(
      value & opt int 1
      & info [ "introduce" ] ~docv:"COUNT"
          ~doc:"Fresh flows the new policy adds.")
  in
  let waypoints_arg =
    Arg.(
      value & opt int 2
      & info [ "waypoints" ] ~docv:"COUNT"
          ~doc:"Flows carrying a mandatory waypoint.")
  in
  let batch_arg =
    Arg.(
      value & opt int 4
      & info [ "b"; "batch" ] ~docv:"MODS"
          ~doc:"Per-switch flow-mod budget per round.")
  in
  let shards_arg =
    Arg.(
      value & opt int 2
      & info [ "s"; "shards" ] ~docv:"N" ~doc:"TCAM shards per switch.")
  in
  let capacity_arg =
    Arg.(
      value & opt int 64
      & info [ "capacity" ] ~docv:"SLOTS" ~doc:"TCAM slots per shard.")
  in
  let algo_arg =
    Arg.(
      value
      & opt algo_conv (Firmware.FR_O Store.Bit_backend)
      & info [ "algo" ] ~docv:"SCHED"
          ~doc:"Scheduler for every switch (ignored with --oracle).")
  in
  let oracle_arg =
    Arg.(
      value & flag
      & info [ "oracle" ]
          ~doc:"Transient-path sweep: roll the same plan out under every \
                scheduler, probing consistency and waypoints at every round \
                boundary and mid-flush instant; exit 1 on any divergence.")
  in
  let chaos_arg =
    Arg.(
      value & flag
      & info [ "chaos" ]
          ~doc:"Switch-loss certification: run $(b,--cases) seeded random \
                rollouts, each under a random per-switch fault schedule \
                (crashes, slow acks, stuck TCAM banks) with supervision \
                and compensating rollback engaged, across every scheduler; \
                exit 1 on any divergence.")
  in
  let cases_arg =
    Arg.(
      value & opt int 100
      & info [ "cases" ] ~docv:"N"
          ~doc:"Fault schedules to certify with $(b,--chaos).")
  in
  let node_fault_arg =
    Arg.(
      value & opt_all string []
      & info [ "node-fault" ] ~docv:"SPEC"
          ~doc:"Inject a per-switch fault (repeatable): \
                $(b,NODE:crash\\@ROUND)[$(b,+mid)], \
                $(b,NODE:slow\\@ROUND=MS)[$(b,x)$(i,HEAL)] or \
                $(b,NODE:stuck\\@ROUND=SHARD:A+B).  Crash faults need \
                $(b,--journal).")
  in
  let abort_at_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "abort-at" ] ~docv:"ROUND"
          ~doc:"Abort the rollout at this committed round boundary and roll \
                back to the pre-rollout policy.")
  in
  let hold_arg =
    Arg.(
      value
      & opt (some (enum [ ("wait", `Wait); ("abort", `Abort) ])) None
      & info [ "hold" ] ~docv:"POLICY"
          ~doc:"What to do when a round cannot complete: $(b,wait) parks the \
                rollout (resumable from the journal), $(b,abort) rolls back. \
                Implies supervision even without $(b,--node-fault).")
  in
  let deadline_arg =
    Arg.(
      value & opt float 50.0
      & info [ "deadline" ] ~docv:"MS"
          ~doc:"Per-switch modelled deadline for one flush attempt under \
                supervision.")
  in
  let no_check_arg =
    Arg.(
      value & flag
      & info [ "no-check" ]
          ~doc:"Skip the pure-model plan certification (meaningless with \
                --oracle).")
  in
  let samples_arg =
    Arg.(
      value & opt int 2
      & info [ "samples" ] ~docv:"K"
          ~doc:"Packets traced per stamped flow at each probe point.")
  in
  let domains_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:"Executors for the fleet fan-out and every switch service \
                (default: FASTRULE_DOMAINS or 1).")
  in
  let journal_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"DIR"
          ~doc:"Journal the rollout (one sub-journal per switch plus the \
                rollout log); recover with the library's Net.recover.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH" ~doc:"Dump the run as JSON.")
  in
  Cmd.v
    (Cmd.info "net"
       ~doc:"Network-wide consistent updates: plan an old $(b,->) new policy \
             rollout as two-phase rounds over a switch fleet, execute it, \
             and (with $(b,--oracle)) prove no packet ever sees a mixed \
             path or skips a waypoint.")
    Term.(
      const run $ shape_arg $ nodes_arg $ flows_arg $ reroute_arg
      $ withdraw_arg $ introduce_arg $ waypoints_arg $ seed_arg $ batch_arg
      $ shards_arg $ capacity_arg $ algo_arg $ oracle_arg $ chaos_arg
      $ cases_arg $ node_fault_arg $ abort_at_arg $ hold_arg $ deadline_arg
      $ no_check_arg $ samples_arg $ domains_arg $ journal_arg $ json_arg)

let () =
  let doc = "FastRule (ICDCS'18) reproduction toolkit" in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "fastrule_cli" ~doc)
          [
            stats_cmd;
            generate_cmd;
            run_cmd;
            hw_cmd;
            ctrl_cmd;
            journal_cmd;
            conform_cmd;
            cache_cmd;
            plane_cmd;
            net_cmd;
          ]))
